"""Silos: the simulated servers that host activations.

A silo bundles a CPU resource (its simulated hardware), an activation
catalog, and a network endpoint.  One silo corresponds to one server in the
paper's deployment (one Orleans silo per EC2 instance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..kernel.resources import CpuResource
from ..kernel.scheduler import Scheduler
from .key import ActorKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .activation import Activation


class Silo:
    """One simulated server in the cluster."""

    def __init__(
        self,
        scheduler: Scheduler,
        silo_id: str,
        cores: int = 2,
        speed: float = 1.0,
        instance_type: str = "generic",
    ) -> None:
        self.scheduler = scheduler
        self.silo_id = silo_id
        self.instance_type = instance_type
        self.cpu = CpuResource(scheduler, cores=cores, speed=speed)
        self._activations: dict[ActorKey, "Activation"] = {}
        self.stopping = False
        # Graceful-drain decommission state: a draining silo keeps serving
        # its current activations (unlike a crash, nothing is lost) but is
        # excluded from placement, and the drain loop migrates its
        # activations out before shutdown completes.
        self.draining = False
        # Set when the silo fails without the cluster noticing: the process
        # is gone but membership still lists it until its lease lapses and
        # the failure detector evicts it.  Messages routed here fail fast.
        self.crashed = False
        # Self-quarantine: the silo lost its membership lease (partitioned
        # from the system store) and parked its mailboxes.  Unlike a crash
        # the process is alive — it heartbeats, scram-flushes state and
        # rejoins with a fresh announce once the partition heals.
        self.quarantined = False

    # -- catalog -----------------------------------------------------------------

    def add_activation(self, activation: "Activation") -> None:
        """Register a new activation in this silo's catalog."""
        if activation.key in self._activations:
            raise ValueError(f"{activation.key} already activated on {self.silo_id}")
        self._activations[activation.key] = activation

    def remove_activation(self, key: ActorKey) -> None:
        """Drop an activation from the catalog (after it closed)."""
        self._activations.pop(key, None)

    def get_activation(self, key: ActorKey) -> "Activation | None":
        """The live activation for ``key``, if any."""
        return self._activations.get(key)

    def activations(self) -> Iterable["Activation"]:
        """Snapshot of current activations."""
        return list(self._activations.values())

    @property
    def activation_count(self) -> int:
        """Number of live activations hosted here."""
        return len(self._activations)

    def mailbox_backlog(self) -> int:
        """Messages queued (not yet dequeued) across all activations.

        A pull-style gauge for the metrics registry: evaluated only when a
        snapshot is taken, so it costs nothing during normal execution.
        """
        return sum(
            len(activation.mailbox) for activation in self._activations.values()
        )

    def idle_candidates(self, idle_timeout: float) -> list["Activation"]:
        """Activations unused for ``idle_timeout`` seconds and not busy."""
        now = self.scheduler.now
        return [
            activation
            for activation in self._activations.values()
            if not activation.closing
            and not activation.busy
            and now - activation.last_used >= idle_timeout
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Silo {self.silo_id} type={self.instance_type} "
            f"activations={self.activation_count}>"
        )
