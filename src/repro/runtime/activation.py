"""Activations: live instances of virtual actors.

An activation owns the actor instance, its mailbox and its message pump.
The pump enforces Orleans-style *turn-based* concurrency: one message runs
to completion (including its awaits) before the next is dequeued, unless the
actor class opted into reentrancy.  Every message execution charges its CPU
cost to the hosting silo, which is how actor work contends for simulated
hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import (
    ActorDeactivatedError,
    ActorMethodError,
    CancelledError,
    FencedWriteError,
    ReentrancyError,
)
from ..kernel.scheduler import Task
from ..kernel.sync import Event, Queue
from ..storage.serde import snapshot
from .actor import DEFAULT_METHOD_OPTIONS, Actor, ActorContext, method_options
from .key import ActorKey
from .messages import Invocation
from .persistence import StateCell, WritePolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import AodbRuntime
    from .silo import Silo

_CLOSE = object()


class Activation:
    """One in-memory incarnation of a virtual actor."""

    def __init__(
        self,
        runtime: "AodbRuntime",
        actor_class: type[Actor],
        key: ActorKey,
        silo: "Silo",
        predecessor_closed: Event | None = None,
    ) -> None:
        self.runtime = runtime
        self._predecessor_closed = predecessor_closed
        self.actor_class = actor_class
        self.key = key
        # The qualified name and the one-element chain suffix are needed on
        # every turn (reentrancy detection, chain extension); format once.
        self._qualified = key.qualified()
        self._self_chain = (self._qualified,)
        self.silo = silo
        context = ActorContext(runtime, key, silo.silo_id)
        context.activation = self  # type: ignore[attr-defined]
        self.instance = actor_class(context)
        capacity = (
            actor_class.mailbox_capacity
            if actor_class.mailbox_capacity is not None
            else runtime.config.mailbox_capacity
        )
        self.mailbox: Queue[Any] = Queue(runtime.scheduler, maxsize=capacity)
        self.closing = False
        self.closed = Event(runtime.scheduler)
        self.broken: BaseException | None = None
        # Quarantine parking: set to the fault new messages should fail
        # with while the hosting silo has lost its membership lease.  The
        # activation is alive (unlike closing) but refuses work.
        self.parked: BaseException | None = None
        self.active_chain: tuple[str, ...] = ()
        # Span of the turn currently executing, so sub-calls made through
        # ``context.actor(...)`` become its children (None when untraced).
        self.active_span: Any = None
        self.last_used = runtime.scheduler.now
        self.messages_handled = 0
        # Per-method dispatch cache: method name -> (bound method, options,
        # resolved base cost).  Everything cached is stable for the life of
        # the activation (config.method_costs is fixed at construction), so
        # the getattr chain and cost resolution run once per method name.
        self._method_cache: dict[str, tuple[Any, dict[str, Any], float]] = {}
        self._inflight = 0
        self._idle_event = Event(runtime.scheduler)
        self._idle_event.set()
        self._timers: dict[str, Task] = {}
        self._pump_task = runtime.scheduler.spawn(
            self._pump(), name=f"pump:{self._qualified}"
        )

    # -- enqueue ---------------------------------------------------------------

    def enqueue(self, invocation: Invocation) -> None:
        """Queue one invocation; raises if the activation is shutting down.

        A message whose call chain already passes through this actor would
        deadlock a busy non-reentrant activation (the classic A→B→A cycle):
        it is either executed interleaved (``allow_chain_reentrancy``,
        Orleans' call-chain reentrancy) or rejected loudly.
        """
        if self.closing:
            raise ActorDeactivatedError(self._qualified)
        if self.parked is not None:
            raise self.parked
        if (
            not self.instance.reentrant
            and self._inflight > 0
            and self._qualified in invocation.chain
        ):
            if getattr(self.actor_class, "allow_chain_reentrancy", False):
                invocation.enqueued_at = self.runtime.scheduler.now
                self._inflight += 1
                self._idle_event.clear()
                self.runtime.scheduler.spawn(
                    self._handle_tracked(invocation),
                    name=f"reentrant:{invocation.describe()}",
                )
                return
            raise ReentrancyError(
                f"{invocation.describe()} would deadlock: call chain "
                f"{' -> '.join(invocation.chain)} re-enters busy "
                f"non-reentrant actor {self.key}"
            )
        invocation.enqueued_at = self.runtime.scheduler.now
        self.mailbox.put_nowait(invocation)

    @property
    def busy(self) -> bool:
        """True while messages are queued or executing."""
        return bool(len(self.mailbox)) or self._inflight > 0

    # -- lifecycle ----------------------------------------------------------------

    async def _start(self) -> None:
        if self._predecessor_closed is not None:
            # A previous activation of this grain is still persisting its
            # state; wait so our state load observes its final flush.
            await self._predecessor_closed.wait()
        # Activation work (CPU charge + state load) is attributed to the
        # pseudo-method ``__activate__`` so profiler totals still sum to the
        # kernel's busy ledger.
        profiler = self.runtime.profiler
        profile = None
        if profiler.enabled:
            mprof = profiler.method_record(self.key.type_name, "__activate__")
            aprof = profiler.activation_record(self.key)
            mprof.calls += 1
            aprof.calls += 1
            profile = (mprof, aprof)
        if self.runtime.config.activation_cost > 0:
            await self.silo.cpu.consume(
                self.runtime.config.activation_cost, profile=profile
            )
        if self.actor_class.durable:
            cell = StateCell(
                self.key,
                self.runtime.grain_storage,
                writer=self.runtime.group_commit,
                fence=self.runtime.acquire_fence(self),
                journal=self.runtime.redo_journal,
            )
            load_started = self.runtime.scheduler.now
            await cell.load()
            if cell.replayed and self.runtime.tracer.enabled:
                # Crash recovery ran: the redo-journal suffix was applied
                # over the stored document.  The span covers the whole load.
                tracer = self.runtime.tracer
                replay = tracer.begin(
                    self.key,
                    "wal-replay",
                    self.silo.silo_id,
                    self.runtime.scheduler.now,
                    start=load_started,
                    method="redo-replay",
                )
                tracer.finish(replay, self.runtime.scheduler.now)
            if profile is not None:
                elapsed = self.runtime.scheduler.now - load_started
                for record in profile:
                    record.storage_wait += elapsed
            self.instance._attach_state_cell(cell)
            if self.actor_class.write_policy is WritePolicy.INTERVAL:
                self.register_timer(
                    "__state_flush__",
                    self.actor_class.write_interval_seconds,
                    "__flush_state__",
                )
        await self.instance.on_activate()

    async def _pump(self) -> None:
        try:
            await self._start()
        except BaseException as exc:  # noqa: BLE001 - surface via replies
            self.broken = exc
            self.closing = True
            self._fail_pending(exc)
            self.runtime._activation_failed(self, exc)
            self.closed.set()
            return
        mailbox = self.mailbox
        empty = mailbox.empty
        get_nowait = mailbox.get_nowait
        handle = self._handle
        reply = self.runtime._reply
        silo_id = self.silo.silo_id
        while True:
            # Buffered fast path: skip the future a plain get() allocates.
            if not empty():
                message = get_nowait()
            else:
                message = await mailbox.get()
            if message is _CLOSE:
                break
            if self.instance.reentrant:
                self._inflight += 1
                self._idle_event.clear()
                self.runtime.scheduler.spawn(
                    self._handle_tracked(message), name="handle"
                )
            else:
                self._inflight += 1
                self._idle_event.clear()
                try:
                    await handle(message)
                except (GeneratorExit, CancelledError):
                    raise  # the pump itself is being torn down
                except BaseException as exc:  # noqa: BLE001 - pump must live
                    # Nothing _handle raises should be able to kill the
                    # mailbox pump; fail the message, keep serving.
                    reply(message, None, exc, silo_id)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle_event.set()
        # Drain-and-close: wait for reentrant handlers still in flight.
        if self._inflight > 0:
            await self._idle_event.wait()
        await self._finalize()

    async def _handle_tracked(self, message: Invocation) -> None:
        try:
            await self._handle(message)
        except (GeneratorExit, CancelledError):
            raise  # activation teardown
        except BaseException as exc:  # noqa: BLE001 - keep serving
            self.runtime._reply(message, None, exc, self.silo.silo_id)
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle_event.set()

    async def _handle(self, invocation: Invocation) -> None:
        runtime = self.runtime
        scheduler = runtime.scheduler
        self.last_used = started = scheduler.now
        invocation.started_at = started
        span = invocation.span
        if span is not None and span.end is None:
            # Mailbox wait: from enqueue until this turn started.  For the
            # first message of a fresh activation this includes activation
            # start (CPU charge, state load, on_activate).
            span.queue += started - invocation.enqueued_at
            span.silo_id = self.silo.silo_id
        if invocation.deadline is not None and started >= invocation.deadline:
            # The caller's deadline already failed the reply (the deadline
            # timer sorts before this dequeue at equal timestamps); running
            # the method would only burn silo CPU on an abandoned request.
            return
        # Continuous profiling: fetch this turn's two accumulation rows once
        # (method-level and activation-level); every charge below adds plain
        # floats into them.  Disabled costs one attribute read.
        profiler = runtime.profiler
        if profiler.enabled:
            profiler.turns += 1
            mprof = profiler.method_record(self.key.type_name, invocation.method)
            aprof = profiler.activation_record(self.key)
            mprof.calls += 1
            aprof.calls += 1
            mailbox_wait = started - invocation.enqueued_at
            mprof.queue_wait += mailbox_wait
            aprof.queue_wait += mailbox_wait
            profile = (mprof, aprof)
        else:
            mprof = aprof = profile = None
        error: BaseException | None = None
        result: Any = None
        method_name = invocation.method
        # System pseudo-methods all start with an underscore; application
        # methods essentially never do, so one character test stands in for
        # three string comparisons on the hot path.
        if method_name and method_name[0] == "_":
            if method_name == "__flush_state__":
                try:
                    flush_started = scheduler.now
                    await self._flush_if_dirty()
                    flush_elapsed = scheduler.now - flush_started
                    if span is not None and span.end is None:
                        span.storage += flush_elapsed
                    if mprof is not None:
                        mprof.storage_wait += flush_elapsed
                        aprof.storage_wait += flush_elapsed
                    runtime._reply(invocation, None, None, self.silo.silo_id)
                except Exception as exc:  # noqa: BLE001 - storage failure
                    # A timer-driven flush failed (e.g. storage throttling):
                    # record it; the state stays dirty and the next interval
                    # retries.
                    runtime._reply(invocation, None, exc, self.silo.silo_id)
                return
            if method_name == "__txn_snapshot__":
                # Transactional undo logging: hand the coordinator an
                # isolated copy of this actor's transactional state.
                runtime._reply(
                    invocation, snapshot(self.instance.state), None, self.silo.silo_id
                )
                return
            if method_name == "__txn_restore__":
                document = invocation.args[0]
                self.instance.state.clear()
                self.instance.state.update(document)
                self.instance.mark_dirty()
                runtime._reply(invocation, True, None, self.silo.silo_id)
                return
        entry = self._method_cache.get(method_name)
        if entry is None:
            method = getattr(self.instance, method_name, None)
            if method is None or method_name.startswith("_"):
                entry = (None, DEFAULT_METHOD_OPTIONS, 0.0)
            else:
                options = method_options(
                    getattr(self.actor_class, method_name, method)
                )
                cost = runtime.config.method_costs.get(
                    (self.key.type_name, method_name)
                )
                if cost is None:
                    cost = options["cost"]
                if cost is None:
                    cost = (
                        self.actor_class.default_method_cost
                        if self.actor_class.default_method_cost is not None
                        else runtime.config.default_method_cost
                    )
                entry = (method, options, cost)
            self._method_cache[method_name] = entry
        method, options, cost = entry
        if method is None:
            error = ActorMethodError(
                f"{self.actor_class.__name__} has no method {method_name!r}"
            )
        else:
            if cost > 0:
                overhead = runtime.config.dispatch_overhead_cost
                if overhead > 0 and invocation.batch_cohort > 1:
                    # The cost model splits every method charge into
                    # per-message dispatch overhead plus application work;
                    # members of a K-message envelope share one dispatch, so
                    # each pays work + overhead/K (Reactors-style batched
                    # execution).  Cohort 1 charges full cost, bit-identical
                    # to the unbatched runtime.
                    shared = min(overhead, cost)
                    cost = (cost - shared) + shared / invocation.batch_cohort
                cpu_started = scheduler.now
                await self.silo.cpu.consume(cost, profile=profile)
                if span is not None and span.end is None:
                    # Core-queueing plus service: the silo-contention signal.
                    span.cpu += scheduler.now - cpu_started
            if not self.instance.reentrant:
                # Sub-calls made by this turn carry the extended chain, so
                # cycles back into this (busy) actor are detectable.
                chain = invocation.chain
                self.active_chain = (
                    chain + self._self_chain if chain else self._self_chain
                )
            self.active_span = span
            try:
                result = await method(*invocation.args, **invocation.kwargs)
            except GeneratorExit:
                raise  # activation teardown, not an application error
            except BaseException as exc:  # noqa: BLE001 - forwarded to caller
                error = exc
            finally:
                self.active_chain = ()
                self.active_span = None
        self.messages_handled += 1
        self.last_used = scheduler.now
        if (
            error is None
            and self.actor_class.durable
            and self.actor_class.write_policy is WritePolicy.WRITE_THROUGH
            and not options["read_only"]
        ):
            self.instance.mark_dirty()
            try:
                flush_started = scheduler.now
                await self._flush_if_dirty()
                flush_elapsed = scheduler.now - flush_started
                if span is not None and span.end is None:
                    span.storage += flush_elapsed
                if mprof is not None:
                    mprof.storage_wait += flush_elapsed
                    aprof.storage_wait += flush_elapsed
            except Exception as exc:  # noqa: BLE001 - surface to the caller
                # Write-through means "durable when acknowledged": if the
                # flush fails (storage throttling, conditional conflict),
                # the caller must see the failure, not a false ack.
                error = exc
        if mprof is not None and error is not None:
            mprof.errors += 1
            aprof.errors += 1
        runtime._reply(invocation, result, error, self.silo.silo_id)

    async def _flush_if_dirty(self) -> None:
        cell = self.instance._state_cell
        if cell is not None and cell.dirty:
            tracer = self.runtime.tracer
            if not tracer.enabled:
                await cell.flush()
                return
            flush_started = self.runtime.scheduler.now
            try:
                await cell.flush()
            except FencedWriteError as exc:
                # A successor fenced this activation out: the write bounced
                # off the storage fence floor (split-brain averted).
                span = tracer.begin(
                    self.key,
                    "fenced-write",
                    self.silo.silo_id,
                    self.runtime.scheduler.now,
                    start=flush_started,
                    method="flush",
                )
                tracer.finish(
                    span,
                    self.runtime.scheduler.now,
                    status="bounced",
                    error=str(exc),
                )
                raise

    def _fail_pending(self, exc: BaseException) -> None:
        for message in self.mailbox.drain_nowait():
            if message is _CLOSE:
                continue
            if message.reply is not None and not message.reply.done():
                message.reply.set_exception(exc)
            self.runtime.tracer.finish(
                message.span,
                self.runtime.scheduler.now,
                status="error",
                error=str(exc),
            )

    def abort(self, fault: BaseException) -> None:
        """Tear the activation down *ungracefully*, as a process crash would.

        Unlike :meth:`close`, nothing is drained or persisted and no
        ``on_deactivate`` hook runs: the pump is cancelled, timers die,
        queued requests fail with ``fault``, and the activation is marked
        closed.  Used by ``Runtime.crash_silo`` and the failure detector;
        the catalog/directory cleanup stays with the caller.
        """
        self.closing = True
        self.broken = fault
        self._pump_task.cancel()
        for timer_name in list(self._timers):
            self.cancel_timer(timer_name)
        self._fail_pending(fault)
        self.closed.set()

    def park(self, fault: BaseException) -> None:
        """Stop serving without tearing down (quarantine).

        Queued and future messages fail with ``fault``; timers stop so the
        parked actor does not keep flushing from the wrong side of a
        partition.  The pump stays alive and ``closing`` stays False, so a
        later :meth:`close` (silo shutdown) or :meth:`abort` still works.
        """
        self.parked = fault
        tracer = self.runtime.tracer
        if tracer.enabled:
            span = tracer.begin(
                self.key,
                "quarantine-park",
                self.silo.silo_id,
                self.runtime.scheduler.now,
                method="park",
            )
            tracer.finish(
                span,
                self.runtime.scheduler.now,
                status="parked",
                error=str(fault),
            )
        for timer_name in list(self._timers):
            self.cancel_timer(timer_name)
        self._fail_pending(fault)

    async def close(self) -> None:
        """Gracefully stop: drain the mailbox, persist, run on_deactivate."""
        if self.closing:
            await self.closed.wait()
            return
        self.closing = True
        self.mailbox.put_nowait(_CLOSE)
        await self.closed.wait()

    async def _finalize(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        try:
            await self.instance.on_deactivate()
            if (
                self.actor_class.durable
                and self.actor_class.write_policy is not WritePolicy.MANUAL
            ):
                await self._flush_if_dirty()
        except BaseException as exc:  # noqa: BLE001 - report, never hang
            self.runtime._activation_failed(self, exc)
        finally:
            self.closed.set()

    # -- timers ---------------------------------------------------------------------

    def register_timer(
        self, name: str, period: float, method: str, *args: Any
    ) -> None:
        """Run ``method`` through the mailbox every ``period`` seconds."""
        if period <= 0:
            raise ValueError("timer period must be positive")
        self.cancel_timer(name)

        async def tick() -> None:
            while not self.closing:
                await self.runtime.scheduler.sleep(period)
                if self.closing:
                    return
                invocation = Invocation(
                    target=self.key,
                    method=method,
                    args=tuple(snapshot(arg) for arg in args),
                    caller_endpoint=self.silo.silo_id,
                    one_way=True,
                )
                tracer = self.runtime.tracer
                if tracer.enabled:
                    # Timer fires start fresh causal trees: nothing "called"
                    # them, the clock did.
                    invocation.span = tracer.begin(
                        self.key,
                        "timer",
                        self.silo.silo_id,
                        self.runtime.scheduler.now,
                        method=method,
                    )
                try:
                    self.enqueue(invocation)
                except ActorDeactivatedError:
                    tracer.finish(
                        invocation.span,
                        self.runtime.scheduler.now,
                        status="error",
                        error="actor deactivated",
                    )
                    return

        self._timers[name] = self.runtime.scheduler.spawn(
            tick(), name=f"timer:{self.key}:{name}"
        )

    def cancel_timer(self, name: str) -> bool:
        """Cancel a registered timer; returns True if it existed."""
        timer = self._timers.pop(name, None)
        if timer is None:
            return False
        timer.cancel()
        return True
