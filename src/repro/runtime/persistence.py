"""Actor-state persistence policies.

Orleans lets the developer decide when grain state reaches storage (§5 of
the paper: write on every request, batch a window, or only on deactivation).
The same spectrum is offered here as :class:`WritePolicy`, chosen per actor
class:

- ``WRITE_THROUGH``: persist after every state-mutating method;
- ``INTERVAL``: persist at most every ``write_interval_seconds`` (a timer
  flushes dirty state);
- ``ON_DEACTIVATE``: persist only when the activation is collected or the
  silo shuts down (the configuration the paper benchmarks);
- ``MANUAL``: only when the actor itself calls ``write_state()``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from ..storage.kv import KeyValueStore
from .key import ActorKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.groupcommit import GroupCommitWriter


class WritePolicy(enum.Enum):
    """When an actor's state document is flushed to grain storage."""

    WRITE_THROUGH = "write_through"
    INTERVAL = "interval"
    ON_DEACTIVATE = "on_deactivate"
    MANUAL = "manual"


class StateCell:
    """The persistent-state holder attached to a durable actor.

    Wraps a plain dict document plus the etag observed at load time, so
    writes are conditional: if another activation of the same grain wrote
    concurrently (which the single-activation guarantee should prevent),
    the conditional check fails loudly instead of silently losing data.
    """

    def __init__(
        self,
        key: ActorKey,
        store: KeyValueStore,
        writer: "GroupCommitWriter | None" = None,
    ) -> None:
        self._key = key
        self._store = store
        # Optional group-commit path: flushes join a commit window instead
        # of paying their own storage round trip.  Durability is identical —
        # flush() still returns only after the write landed.
        self._writer = writer
        self.document: dict[str, Any] = {}
        self._etag = 0
        self.dirty = False
        self.loads = 0
        self.flushes = 0

    async def load(self) -> bool:
        """Read the document from storage; returns True if it existed."""
        item = await self._store.try_get(self._key.storage_key())
        self.loads += 1
        if item is None:
            self.document = {}
            self._etag = 0
            self.dirty = False
            return False
        self.document = dict(item.value)
        self._etag = item.etag
        self.dirty = False
        return True

    async def flush(self) -> None:
        """Write the document if dirty (no-op otherwise)."""
        if not self.dirty:
            return
        if self._writer is not None:
            self._etag = await self._writer.put(
                self._key.storage_key(), self.document, expected_etag=self._etag
            )
        else:
            self._etag = await self._store.put(
                self._key.storage_key(), self.document, expected_etag=self._etag
            )
        self.dirty = False
        self.flushes += 1

    async def clear(self) -> None:
        """Delete the stored document (actor-level hard delete)."""
        await self._store.delete(self._key.storage_key())
        self.document = {}
        self._etag = 0
        self.dirty = False
