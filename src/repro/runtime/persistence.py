"""Actor-state persistence policies.

Orleans lets the developer decide when grain state reaches storage (§5 of
the paper: write on every request, batch a window, or only on deactivation).
The same spectrum is offered here as :class:`WritePolicy`, chosen per actor
class:

- ``WRITE_THROUGH``: persist after every state-mutating method;
- ``INTERVAL``: persist at most every ``write_interval_seconds`` (a timer
  flushes dirty state);
- ``ON_DEACTIVATE``: persist only when the activation is collected or the
  silo shuts down (the configuration the paper benchmarks);
- ``MANUAL``: only when the actor itself calls ``write_state()``.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from ..storage.kv import KeyValueStore
from .key import ActorKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.groupcommit import GroupCommitWriter
    from ..storage.wal import RedoJournal


class WritePolicy(enum.Enum):
    """When an actor's state document is flushed to grain storage."""

    WRITE_THROUGH = "write_through"
    INTERVAL = "interval"
    ON_DEACTIVATE = "on_deactivate"
    MANUAL = "manual"


class StateCell:
    """The persistent-state holder attached to a durable actor.

    Wraps a plain dict document plus the etag observed at load time, so
    writes are conditional: if another activation of the same grain wrote
    concurrently (which the single-activation guarantee should prevent),
    the conditional check fails loudly instead of silently losing data.
    """

    def __init__(
        self,
        key: ActorKey,
        store: KeyValueStore,
        writer: "GroupCommitWriter | None" = None,
        fence: int | None = None,
        journal: "RedoJournal | None" = None,
    ) -> None:
        self._key = key
        # The storage key is a pure function of the actor key; format it
        # once instead of per load/flush.
        self._storage_key = key.storage_key()
        self._store = store
        # Optional group-commit path: flushes join a commit window instead
        # of paying their own storage round trip.  Durability is identical —
        # flush() still returns only after the write landed.
        self._writer = writer
        # Fence token acquired by this activation at load time; stamped on
        # every flush so the store rejects writes from older activations.
        self.fence = fence
        # Optional redo journal: load() replays its fenced suffix so a
        # crash between flushes loses at most one redo_lag window.
        self._journal = journal
        self.document: dict[str, Any] = {}
        self._etag = 0
        self.dirty = False
        self.loads = 0
        self.flushes = 0
        self.replayed = 0

    @property
    def etag(self) -> int:
        """The etag this cell's next conditional write is based on."""
        return self._etag

    async def load(self) -> bool:
        """Read the document from storage; returns True if it existed.

        With a fence, first raises the store's (and journal's) fence floor —
        from this point a zombie predecessor's in-flight flush is rejected
        even if it lands before this activation's first write.  With a
        journal, the fenced redo suffix is then replayed over the loaded
        document: the recovered state is dirty (it has not been flushed) but
        no longer lost.
        """
        storage_key = self._storage_key
        if self.fence is not None:
            await self._store.advance_fence(storage_key, self.fence)
            if self._journal is not None:
                self._journal.advance_fence(storage_key, self.fence)
        item = await self._store.try_get(storage_key)
        self.loads += 1
        if item is None:
            self.document = {}
            self._etag = 0
        else:
            self.document = dict(item.value)
            self._etag = item.etag
        self.dirty = False
        if self._journal is not None:
            record = self._journal.replay_for(storage_key, self._etag, self.fence)
            if record is not None:
                self.document = dict(record.document)
                self.dirty = True
                self.replayed += 1
        return item is not None

    async def flush(self, *, direct: bool = False) -> None:
        """Write the document if dirty (no-op otherwise).

        ``direct=True`` bypasses the group-commit writer — used by the
        quarantine "scram flush", which must not sit in a commit window
        while the silo is being fenced off.
        """
        if not self.dirty:
            return
        storage_key = self._storage_key
        if self._writer is not None and not direct:
            self._etag = await self._writer.put(
                storage_key, self.document, expected_etag=self._etag, fence=self.fence
            )
        elif self.fence is not None:
            self._etag = await self._store.fenced_put(
                storage_key, self.document, expected_etag=self._etag, fence=self.fence
            )
        else:
            self._etag = await self._store.put(
                storage_key, self.document, expected_etag=self._etag
            )
        self.dirty = False
        self.flushes += 1
        if self._journal is not None:
            self._journal.truncate(storage_key)

    async def clear(self) -> None:
        """Delete the stored document (actor-level hard delete)."""
        await self._store.delete(self._storage_key)
        self.document = {}
        self._etag = 0
        self.dirty = False
