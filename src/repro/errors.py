"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so that
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystems via the subclasses below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Kernel errors
# ---------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for scheduling-kernel errors."""


class CancelledError(KernelError):
    """A task or future was cancelled before completing."""


class InvalidStateError(KernelError):
    """A future was used in a way inconsistent with its state."""


class TimeoutError(KernelError):
    """An awaited operation did not complete within its deadline."""


class SchedulerStoppedError(KernelError):
    """The scheduler was asked to run work after it stopped."""


class DeadlockError(KernelError):
    """The scheduler ran out of events while tasks were still pending."""


# ---------------------------------------------------------------------------
# Storage errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-subsystem errors."""


class KeyNotFoundError(StorageError):
    """A requested key does not exist in the store."""


class ThrottlingError(StorageError):
    """A provisioned-capacity store rejected a request (capacity exceeded)."""


class ThrottledError(ThrottlingError):
    """A throttled request, carrying the store's suggested retry delay.

    ``retry_after`` is in (virtual) seconds; retry policies use it as a lower
    bound for their backoff so clients do not hammer a store that already
    told them when capacity will be available.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class InjectedFaultError(StorageError):
    """A chaos-harness fault injector failed this request on purpose."""


class ConditionalCheckFailedError(StorageError):
    """An optimistic-concurrency (ETag) check failed on write."""


class FencedWriteError(StorageError):
    """A write carried a fence token older than one the store has admitted.

    Raised by the fenced-write path (:meth:`KeyValueStore.fenced_put`) when a
    stale activation — typically a zombie on the minority side of a network
    partition — tries to commit state after its successor already wrote with
    a newer fence.  The rejection is what turns "split brain" into "bounded
    staleness": the minority writer fails loudly instead of clobbering the
    majority's document.
    """


# ---------------------------------------------------------------------------
# Runtime (actor) errors
# ---------------------------------------------------------------------------


class RuntimeFault(ReproError):
    """Base class for actor-runtime errors."""


class UnknownActorTypeError(RuntimeFault):
    """A reference named an actor type not registered with the runtime."""


class ActorMethodError(RuntimeFault):
    """The named method does not exist or is not callable remotely."""


class ActorDeactivatedError(RuntimeFault):
    """A message reached an activation that is shutting down."""


class SiloUnavailableError(RuntimeFault):
    """The target silo is not part of the active cluster membership."""


class QuarantinedSiloError(SiloUnavailableError):
    """The target silo lost its membership lease and self-quarantined.

    A quarantined silo parks its mailboxes instead of serving asks, so calls
    fail fast with this error rather than executing on a possibly-stale
    activation.  It subclasses :class:`SiloUnavailableError`, so default
    retry policies treat it as retryable — the retry lands on the successor
    activation once the failure detector re-places the grain.
    """


class MailboxOverflowError(RuntimeFault):
    """An actor mailbox exceeded its configured capacity."""


class ReentrancyError(RuntimeFault):
    """A non-reentrant actor was re-entered by its own call chain."""


class DeadlineExceededError(RuntimeFault):
    """An ask-style call did not produce a reply before its deadline.

    Raised in virtual time by the runtime's call-deadline machinery: queued
    and in-flight requests fail at the deadline instead of waiting forever
    on a dead or overloaded silo.
    """


# ---------------------------------------------------------------------------
# AODB feature errors
# ---------------------------------------------------------------------------


class AodbError(ReproError):
    """Base class for database-feature errors (indexes, queries, txns)."""


class IndexError_(AodbError):
    """An index was declared or used inconsistently."""


class QueryError(AodbError):
    """A declarative query was malformed."""


class TransactionError(AodbError):
    """Base class for transaction failures."""


class TransactionAbortedError(TransactionError):
    """The transaction was aborted and rolled back."""


class TransactionConflictError(TransactionAbortedError):
    """Lock acquisition failed (conflict or timeout); transaction aborted."""


# ---------------------------------------------------------------------------
# Application-level errors (case studies)
# ---------------------------------------------------------------------------


class PlatformError(ReproError):
    """Base class for case-study platform errors."""


class UnknownEntityError(PlatformError):
    """An operation referenced an entity the platform does not know."""


class AuthorizationError(PlatformError):
    """Access control rejected the operation for the given principal."""


class LifecycleError(PlatformError):
    """An entity was used in a state that forbids the operation.

    Example: slaughtering the same cow twice, or delivering a meat cut
    that has already been transformed into products.
    """
