"""Tests for saga-style workflows."""

import pytest

from repro.aodb import Workflow
from repro.kernel import run
from repro.runtime import Actor


def test_all_steps_apply_on_success():
    log = []

    async def make(name):
        log.append(name)
        return name

    workflow = (
        Workflow("w")
        .step("one", lambda: make("one"))
        .step("two", lambda: make("two"))
    )
    outcome = run(workflow.run())
    assert outcome.succeeded
    assert outcome.applied_steps == ["one", "two"]
    assert outcome.results == {"one": "one", "two": "two"}
    assert log == ["one", "two"]


def test_failure_compensates_in_reverse_order():
    log = []

    async def act(name):
        log.append(("do", name))

    async def undo(name):
        log.append(("undo", name))

    async def fail():
        raise ValueError("step 3 failed")

    workflow = (
        Workflow("w")
        .step("a", lambda: act("a"), lambda: undo("a"))
        .step("b", lambda: act("b"), lambda: undo("b"))
        .step("c", fail, lambda: undo("c"))
    )
    outcome = run(workflow.run())
    assert not outcome.succeeded
    assert outcome.failed_step == "c"
    assert isinstance(outcome.error, ValueError)
    assert outcome.applied_steps == ["a", "b"]
    assert outcome.compensated_steps == ["b", "a"]
    assert log == [("do", "a"), ("do", "b"), ("undo", "b"), ("undo", "a")]


def test_steps_without_compensation_are_skipped_during_undo():
    async def ok():
        return 1

    async def fail():
        raise RuntimeError("x")

    workflow = Workflow().step("a", ok).step("b", fail)
    outcome = run(workflow.run())
    assert not outcome.succeeded
    assert outcome.compensated_steps == []


def test_broken_compensation_is_raised():
    async def ok():
        return 1

    async def fail():
        raise RuntimeError("forward failure")

    async def broken_undo():
        raise OSError("undo also failed")

    workflow = Workflow().step("a", ok, broken_undo).step("b", fail)
    with pytest.raises(OSError, match="undo also failed"):
        run(workflow.run())


def test_workflow_over_actors_eventual_consistency(sched, db):
    """The paper's §4.4 cow-sale example as a workflow instead of a txn."""

    class Farmer(Actor):
        async def add_cow(self, cow_id):
            self.state.setdefault("cows", []).append(cow_id)
            return True

        async def remove_cow(self, cow_id):
            cows = self.state.get("cows", [])
            if cow_id not in cows:
                raise ValueError(f"{self.actor_id} does not own {cow_id}")
            cows.remove(cow_id)
            return True

        async def herd(self):
            return list(self.state.get("cows", ()))

    db.register_actor(Farmer)

    async def main():
        seller = db.ref("Farmer", "seller")
        buyer = db.ref("Farmer", "buyer")
        await seller.add_cow("cow-1")

        sale = (
            db.workflow("sell-cow")
            .step(
                "remove-from-seller",
                lambda: seller.ask("remove_cow", "cow-1"),
                lambda: seller.ask("add_cow", "cow-1"),
            )
            .step(
                "add-to-buyer",
                lambda: buyer.ask("add_cow", "cow-1"),
                lambda: buyer.ask("remove_cow", "cow-1"),
            )
        )
        outcome = await sale.run()
        herds_after_sale = (await seller.herd(), await buyer.herd())

        # A second sale of the same cow fails at step 1 and compensates.
        second = (
            db.workflow("sell-again")
            .step(
                "remove-from-seller",
                lambda: seller.ask("remove_cow", "cow-1"),
                lambda: seller.ask("add_cow", "cow-1"),
            )
        )
        second_outcome = await second.run()
        return outcome, herds_after_sale, second_outcome

    outcome, herds, second_outcome = sched.run_until_complete(main())
    assert outcome.succeeded
    assert herds == ([], ["cow-1"])
    assert not second_outcome.succeeded
    assert second_outcome.failed_step == "remove-from-seller"
