"""Tests for multi-actor transactions (2PL, rollback, conflicts)."""

import pytest

from repro.errors import TransactionAbortedError, TransactionConflictError
from repro.runtime import Actor


class Account(Actor):
    """A transactional bank-account-like actor (state-document based)."""

    async def deposit(self, amount):
        self.state["balance"] = self.state.get("balance", 0) + amount
        self.mark_dirty()
        return self.state["balance"]

    async def withdraw(self, amount):
        balance = self.state.get("balance", 0)
        if balance < amount:
            raise ValueError("insufficient funds")
        self.state["balance"] = balance - amount
        self.mark_dirty()
        return self.state["balance"]

    async def balance(self):
        return self.state.get("balance", 0)


@pytest.fixture
def accounts(sched, db):
    db.register_actor(Account)

    async def seed():
        await db.ref("Account", "a").deposit(100)
        await db.ref("Account", "b").deposit(50)

    sched.run_until_complete(seed())
    return db


def test_commit_applies_all_updates(sched, accounts):
    async def main():
        async with accounts.transaction() as txn:
            await txn.call("Account", "a", "withdraw", 30)
            await txn.call("Account", "b", "deposit", 30)
        return (
            await accounts.ref("Account", "a").balance(),
            await accounts.ref("Account", "b").balance(),
        )

    assert sched.run_until_complete(main()) == (70, 80)
    assert accounts.stats_commits == 1


def test_failure_rolls_back_all_participants(sched, accounts):
    async def main():
        with pytest.raises(ValueError, match="insufficient funds"):
            async with accounts.transaction() as txn:
                await txn.call("Account", "b", "deposit", 500)
                await txn.call("Account", "a", "withdraw", 1000)  # fails
        return (
            await accounts.ref("Account", "a").balance(),
            await accounts.ref("Account", "b").balance(),
        )

    # Both balances back to their seeds: the deposit to b was undone.
    assert sched.run_until_complete(main()) == (100, 50)
    assert accounts.stats_aborts == 1


def test_explicit_abort(sched, accounts):
    async def main():
        txn = accounts.transaction()
        await txn.call("Account", "a", "withdraw", 10)
        await txn.abort()
        return await accounts.ref("Account", "a").balance(), txn.state

    balance, state = sched.run_until_complete(main())
    assert balance == 100
    assert state == "aborted"


def test_transaction_isolation_blocks_conflicting_txn(sched, accounts):
    order = []

    async def transfer(name, delay):
        async with accounts.transaction() as txn:
            await txn.call("Account", "a", "withdraw", 10)
            order.append(("locked", name))
            await accounts.runtime.scheduler.sleep(delay)
            await txn.call("Account", "b", "deposit", 10)
        order.append(("end", name))

    async def main():
        t1 = sched.spawn(transfer("t1", 5.0))
        await sched.sleep(1.0)
        t2 = sched.spawn(transfer("t2", 0.0))
        await sched.gather([t1, t2])
        return await accounts.ref("Account", "a").balance()

    balance = sched.run_until_complete(main())
    assert balance == 80  # both applied, serially
    # t2 could not take the lock on account `a` before t1 finished.
    assert order == [("locked", "t1"), ("end", "t1"), ("locked", "t2"), ("end", "t2")]


def test_lock_timeout_aborts_with_conflict(sched, accounts):
    async def hold_lock():
        txn = accounts.transaction()
        await txn.call("Account", "a", "balance")
        await sched.sleep(100)  # hold the lock well past the victim timeout
        await txn.commit()

    async def main():
        sched.spawn(hold_lock())
        await sched.sleep(1)
        with pytest.raises(TransactionConflictError):
            async with accounts.transaction(lock_timeout=2.0) as txn:
                await txn.call("Account", "a", "withdraw", 10)
        return await accounts.ref("Account", "a").balance()

    # Victim aborted; holder committed untouched balance.
    assert sched.run_until_complete(main()) == 100


def test_wound_released_locks_allow_progress(sched, accounts):
    async def main():
        async with accounts.transaction() as txn1:
            await txn1.call("Account", "a", "withdraw", 10)
        # txn1 committed and released; txn2 proceeds immediately.
        async with accounts.transaction() as txn2:
            await txn2.call("Account", "a", "withdraw", 10)
        return await accounts.ref("Account", "a").balance()

    assert sched.run_until_complete(main()) == 80


def test_repeated_touch_locks_once(sched, accounts):
    async def main():
        async with accounts.transaction() as txn:
            await txn.call("Account", "a", "deposit", 1)
            await txn.call("Account", "a", "deposit", 1)  # same participant
        return await accounts.ref("Account", "a").balance()

    assert sched.run_until_complete(main()) == 102


def test_using_finished_transaction_raises(sched, accounts):
    async def main():
        txn = accounts.transaction()
        await txn.call("Account", "a", "balance")
        await txn.commit()
        with pytest.raises(TransactionAbortedError):
            await txn.call("Account", "a", "deposit", 1)
        with pytest.raises(TransactionAbortedError):
            await txn.abort()

    sched.run_until_complete(main())


def test_abort_is_idempotent(sched, accounts):
    async def main():
        txn = accounts.transaction()
        await txn.call("Account", "a", "balance")
        await txn.abort()
        await txn.abort()  # no error
        return txn.state

    assert sched.run_until_complete(main()) == "aborted"


def test_rollback_restores_exact_document(sched, accounts):
    class Doc(Actor):
        async def put(self, key, value):
            self.state[key] = value
            return dict(self.state)

        async def get_all(self):
            return dict(self.state)

    accounts.register_actor(Doc)

    async def main():
        ref = accounts.ref("Doc", "d")
        await ref.put("stable", {"nested": [1, 2]})
        with pytest.raises(RuntimeError):
            async with accounts.transaction() as txn:
                await txn.call("Doc", "d", "put", "temp", "value")
                raise RuntimeError("force rollback")
        return await ref.get_all()

    assert sched.run_until_complete(main()) == {"stable": {"nested": [1, 2]}}
