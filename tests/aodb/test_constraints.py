"""Tests for declarative cross-actor constraints (the future-work layer)."""

import pytest

from repro.aodb import ConstraintViolation, RelationshipConstraint, UniquenessConstraint
from repro.runtime import Actor


class Owner(Actor):
    async def add_member(self, member_id):
        self.state.setdefault("members", []).append(member_id)
        return True

    async def remove_member(self, member_id):
        members = self.state.get("members", [])
        if member_id not in members:
            raise ValueError(f"{self.actor_id} does not hold {member_id}")
        members.remove(member_id)
        return True

    async def members(self):
        return list(self.state.get("members", ()))


class Member(Actor):
    indexed_attributes = ("owner_id", "tag")

    async def set_owner(self, owner_id):
        self.set_indexed("owner_id", owner_id)
        return owner_id

    async def set_tag(self, tag):
        self.set_indexed("tag", tag)
        return tag


@pytest.fixture
def relationship(db):
    db.register_actor(Owner)
    db.register_actor(Member)
    return RelationshipConstraint(
        db,
        name="membership",
        owner_type="Owner",
        member_type="Member",
        add_method="add_member",
        remove_method="remove_member",
        set_owner_method="set_owner",
        owner_attribute="owner_id",
    )


def test_declaration_requires_index(db):
    db.register_actor(Owner)

    class Unindexed(Actor):
        pass

    db.register_actor(Unindexed)
    with pytest.raises(ConstraintViolation):
        RelationshipConstraint(
            db,
            name="bad",
            owner_type="Owner",
            member_type="Unindexed",
            add_method="a",
            remove_method="r",
            set_owner_method="s",
            owner_attribute="owner_id",
        )


def test_invalid_mode_rejected(db):
    db.register_actor(Owner)
    db.register_actor(Member)
    with pytest.raises(ValueError):
        RelationshipConstraint(
            db, "x", "Owner", "Member", "a", "r", "s", "owner_id", mode="hope"
        )


def test_link_and_verify_consistent(sched, relationship):
    async def main():
        await relationship.link("o1", "m1")
        await relationship.link("o1", "m2")
        await relationship.link("o2", "m3")
        return await relationship.verify("members")

    report = sched.run_until_complete(main())
    assert report.consistent
    assert report.checked == 3


def test_transfer_transactional_applies_and_verifies(sched, relationship):
    async def main():
        await relationship.link("o1", "m1")
        ok = await relationship.transfer("m1", "o1", "o2")
        report = await relationship.verify("members")
        members = await relationship.db.ref("Owner", "o2").members()
        return ok, report, members

    ok, report, members = sched.run_until_complete(main())
    assert ok is True
    assert report.consistent
    assert members == ["m1"]


def test_transfer_aborts_cleanly_when_owner_wrong(sched, relationship):
    async def main():
        await relationship.link("o1", "m1")
        ok = await relationship.transfer("m1", "o2", "o3")  # o2 never owned m1
        report = await relationship.verify("members")
        return ok, report

    ok, report = sched.run_until_complete(main())
    assert ok is False
    assert report.consistent  # rollback restored the world


def test_transfer_workflow_mode(sched, db):
    db.register_actor(Owner)
    db.register_actor(Member)
    relationship = RelationshipConstraint(
        db, "m", "Owner", "Member", "add_member", "remove_member",
        "set_owner", "owner_id", mode="workflow",
    )

    async def main():
        await relationship.link("o1", "m1")
        ok = await relationship.transfer("m1", "o1", "o2")
        report = await relationship.verify("members")
        return ok, report

    ok, report = sched.run_until_complete(main())
    assert ok is True
    assert report.consistent


def test_verify_detects_corruption(sched, relationship):
    async def main():
        await relationship.link("o1", "m1")
        # Corrupt one side directly (bypassing the constraint).
        await relationship.db.ref("Owner", "o2").add_member("m1")
        return await relationship.verify("members")

    report = sched.run_until_complete(main())
    assert not report.consistent
    assert any("m1" in violation for violation in report.violations)


def test_uniqueness_constraint_claims_and_rejects(sched, db):
    db.register_actor(Member)
    unique = UniquenessConstraint(db, "Member", "tag")

    async def main():
        await unique.claim("m1", "ear-tag-7", "set_tag")
        with pytest.raises(ConstraintViolation):
            await unique.claim("m2", "ear-tag-7", "set_tag")
        await unique.claim("m2", "ear-tag-8", "set_tag")
        return unique.verify()

    report = sched.run_until_complete(main())
    assert report.consistent
    assert report.checked == 2


def test_uniqueness_requires_index(db):
    class Plain(Actor):
        pass

    db.register_actor(Plain)
    with pytest.raises(ConstraintViolation):
        UniquenessConstraint(db, "Plain", "anything")


def test_uniqueness_verify_detects_duplicates(sched, db):
    db.register_actor(Member)
    unique = UniquenessConstraint(db, "Member", "tag")

    async def main():
        # Bypass the claim protocol: two actors set the same tag directly.
        await db.ref("Member", "m1").set_tag("dup")
        await db.ref("Member", "m2").set_tag("dup")
        return unique.verify()

    report = sched.run_until_complete(main())
    assert not report.consistent
    assert "dup" in report.violations[0]
