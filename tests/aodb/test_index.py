"""Unit tests for the index registry and indexed actors."""

import pytest

from repro.aodb import MISSING, IndexRegistry
from repro.errors import IndexError_
from repro.runtime import Actor, ActorKey


class Cow(Actor):
    indexed_attributes = ("owner_id", "status")

    async def assign(self, owner_id):
        self.set_indexed("owner_id", owner_id)
        return True

    async def set_status(self, status):
        self.set_indexed("status", status)
        return True

    async def describe(self):
        return dict(self.state)


# -- registry unit tests ------------------------------------------------------


def test_declare_and_lookup_empty():
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    assert registry.lookup("Cow", "owner_id", "nobody") == []


def test_lookup_without_index_raises():
    registry = IndexRegistry()
    with pytest.raises(IndexError_):
        registry.lookup("Cow", "owner_id", "x")


def test_update_without_index_raises():
    registry = IndexRegistry()
    with pytest.raises(IndexError_):
        registry.update(ActorKey("Cow", "c1"), "owner_id", None, "f1")


def test_insert_move_and_remove():
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    key = ActorKey("Cow", "c1")
    registry.update(key, "owner_id", None, "f1")
    assert registry.lookup("Cow", "owner_id", "f1") == ["c1"]
    registry.update(key, "owner_id", "f1", "f2")
    assert registry.lookup("Cow", "owner_id", "f1") == []
    assert registry.lookup("Cow", "owner_id", "f2") == ["c1"]
    registry.update(key, "owner_id", "f2", None)
    assert registry.lookup("Cow", "owner_id", "f2") == []


def test_none_is_an_ordinary_indexable_value():
    """None round-trips through the index like any other value (regression:
    None used to be the "no value" sentinel and silently vanished)."""
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    key = ActorKey("Cow", "c1")
    registry.update(key, "owner_id", MISSING, None)
    assert registry.lookup("Cow", "owner_id", None) == ["c1"]
    # None -> value -> None keeps lookups consistent.
    registry.update(key, "owner_id", None, "f1")
    assert registry.lookup("Cow", "owner_id", None) == []
    assert registry.lookup("Cow", "owner_id", "f1") == ["c1"]
    registry.update(key, "owner_id", "f1", None)
    assert registry.lookup("Cow", "owner_id", "f1") == []
    assert registry.lookup("Cow", "owner_id", None) == ["c1"]


def test_missing_sentinel_insert_and_remove():
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    key = ActorKey("Cow", "c1")
    # MISSING in the old position inserts without touching any bucket.
    registry.update(key, "owner_id", MISSING, "f1")
    assert registry.lookup("Cow", "owner_id", "f1") == ["c1"]
    # MISSING in the new position removes without inserting anywhere.
    registry.update(key, "owner_id", "f1", MISSING)
    assert registry.lookup("Cow", "owner_id", "f1") == []
    # Legacy callers passing None as "no previous value" still work.
    registry.update(key, "owner_id", None, "f2")
    assert registry.lookup("Cow", "owner_id", "f2") == ["c1"]


def test_unhashable_value_rejected():
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    with pytest.raises(IndexError_):
        registry.update(ActorKey("Cow", "c1"), "owner_id", None, ["list"])


def test_lookup_many_intersects():
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    registry.declare("Cow", "status")
    for cow_id, owner, status in [
        ("c1", "f1", "alive"),
        ("c2", "f1", "slaughtered"),
        ("c3", "f2", "alive"),
    ]:
        key = ActorKey("Cow", cow_id)
        registry.update(key, "owner_id", None, owner)
        registry.update(key, "status", None, status)
    assert registry.lookup_many("Cow", {"owner_id": "f1", "status": "alive"}) == ["c1"]
    assert registry.lookup_many("Cow", {"owner_id": "f1"}) == ["c1", "c2"]
    assert registry.lookup_many("Cow", {"owner_id": "f3", "status": "alive"}) == []


def test_lookup_many_requires_criteria():
    registry = IndexRegistry()
    with pytest.raises(IndexError_):
        registry.lookup_many("Cow", {})


def test_remove_actor_purges_everything():
    registry = IndexRegistry()
    registry.declare("Cow", "owner_id")
    key = ActorKey("Cow", "c1")
    registry.note_instance("Cow", "c1")
    registry.update(key, "owner_id", None, "f1")
    registry.remove_actor(key)
    assert registry.lookup("Cow", "owner_id", "f1") == []
    assert registry.extent("Cow") == []


def test_extent_tracking():
    registry = IndexRegistry()
    registry.note_instance("Cow", "c2")
    registry.note_instance("Cow", "c1")
    registry.note_instance("Cow", "c1")  # idempotent
    assert registry.extent("Cow") == ["c1", "c2"]
    assert registry.extent_size("Cow") == 2
    assert registry.extent("Farmer") == []


# -- integration through actors --------------------------------------------------


def test_set_indexed_maintains_index_eagerly(sched, db):
    db.register_actor(Cow)

    async def main():
        await db.ref("Cow", "c1").assign("farmer-1")
        await db.ref("Cow", "c2").assign("farmer-1")
        await db.ref("Cow", "c3").assign("farmer-2")
        first = db.indexes.lookup("Cow", "owner_id", "farmer-1")
        await db.ref("Cow", "c2").assign("farmer-2")
        second = db.indexes.lookup("Cow", "owner_id", "farmer-1")
        return first, second

    first, second = sched.run_until_complete(main())
    assert first == ["c1", "c2"]
    assert second == ["c1"]


def test_set_indexed_none_round_trips(sched, db):
    """An attribute explicitly set to None is findable under None."""
    db.register_actor(Cow)

    async def main():
        await db.ref("Cow", "c1").assign(None)
        under_none = db.indexes.lookup("Cow", "owner_id", None)
        await db.ref("Cow", "c1").assign("farmer-1")
        after_assign = db.indexes.lookup("Cow", "owner_id", None)
        await db.ref("Cow", "c1").assign(None)
        back_to_none = db.indexes.lookup("Cow", "owner_id", None)
        return under_none, after_assign, back_to_none

    under_none, after_assign, back_to_none = sched.run_until_complete(main())
    assert under_none == ["c1"]
    assert after_assign == []
    assert back_to_none == ["c1"]


def test_set_indexed_requires_declaration(sched, db):
    class Sloppy(Actor):
        indexed_attributes = ()

        async def oops(self):
            self.set_indexed("anything", 1)

    db.register_actor(Sloppy)

    async def main():
        from repro.errors import ActorMethodError

        with pytest.raises(ActorMethodError):
            await db.ref("Sloppy", "s").oops()

    sched.run_until_complete(main())


def test_activation_populates_extent(sched, db):
    db.register_actor(Cow)

    async def main():
        await db.ref("Cow", "a").describe()
        await db.ref("Cow", "b").describe()
        return db.indexes.extent("Cow")

    assert sched.run_until_complete(main()) == ["a", "b"]
