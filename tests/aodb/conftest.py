"""Shared fixtures for AODB feature tests."""

import pytest

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def db(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, network=network)
    runtime.add_silo("s1", cores=2)
    return AodbDatabase(runtime)
