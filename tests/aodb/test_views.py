"""Tests for incremental materialized views (registration, folds, reads)."""

import math

import pytest

from repro.aodb import ViewDef
from repro.aodb.views import GLOBAL_GROUP, VIEW_ACTOR_TYPE, shard_id
from repro.errors import QueryError
from repro.runtime import Actor


class Meter(Actor):
    """A minimal view source: folds its own stats and emits view deltas."""

    async def setup(self, org_id):
        self.state["org_id"] = org_id
        self.state["view_stats"] = [0, 0.0, math.inf, -math.inf]
        return True

    async def add(self, points):
        stats = self.state["view_stats"]
        for _ts, value in points:
            stats[0] += 1
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)
        views = self.context.runtime.database.views
        tickets = views.emit_from(self, {"c0": points})
        if tickets:
            await self.context.runtime.scheduler.gather(tickets)
        return len(points)

    async def view_sample(self, group_by=None):
        stats = self.state["view_stats"]
        group = GLOBAL_GROUP if group_by is None else str(self.state.get(group_by))
        return {
            "group": group,
            "entity": self.actor_id,
            "count": stats[0],
            "total": stats[1],
            "vmin": stats[2],
            "vmax": stats[3],
        }


@pytest.fixture
def meters(sched, db):
    db.register_actor(Meter)

    async def setup():
        for meter_id, org in (("m1", "A"), ("m2", "A"), ("m3", "B")):
            await db.ref("Meter", meter_id).setup(org)

    sched.run_until_complete(setup())
    return db


def feed(sched, db, meter_id, points):
    async def main():
        return await db.ref("Meter", meter_id).add(points)

    return sched.run_until_complete(main())


# -- definitions and registration ---------------------------------------------


def test_viewdef_validation_rejects_bad_shapes():
    with pytest.raises(QueryError, match="kind"):
        ViewDef(name="v", source="Meter", kind="median").validate()
    with pytest.raises(QueryError, match="name"):
        ViewDef(name="v::x", source="Meter").validate()
    with pytest.raises(QueryError, match="name"):
        ViewDef(name="", source="Meter").validate()
    with pytest.raises(QueryError, match="window_seconds"):
        ViewDef(name="v", source="Meter", kind="window", window_seconds=0).validate()
    with pytest.raises(QueryError, match="rank_by"):
        ViewDef(name="v", source="Meter", kind="topk", rank_by="median").validate()
    with pytest.raises(QueryError, match="k"):
        ViewDef(name="v", source="Meter", kind="topk", k=0).validate()


def test_register_rejects_unknown_source_and_duplicates(meters):
    with pytest.raises(Exception):
        meters.register_view(ViewDef(name="v", source="NoSuchType"))
    meters.register_view(ViewDef(name="v", source="Meter"))
    with pytest.raises(QueryError, match="already registered"):
        meters.register_view(ViewDef(name="v", source="Meter"))
    assert meters.views.names() == ["v"]
    assert meters.views.registered("v")
    assert meters.views.has_views_for("Meter")
    assert not meters.views.has_views_for("Organization")


def test_view_handle_requires_name_or_source(meters):
    with pytest.raises(QueryError, match="no registered view"):
        meters.view("missing")
    handle = meters.view("missing", source="Meter", group_by="org_id")
    assert handle.materialized is False
    meters.register_view(ViewDef(name="strain", source="Meter", group_by="org_id"))
    assert meters.view("strain").materialized is True


# -- folds and reads -----------------------------------------------------------


def test_aggregate_view_folds_per_group(sched, meters):
    meters.register_view(ViewDef(name="strain", source="Meter", group_by="org_id"))
    feed(sched, meters, "m1", [(0.0, 1.0), (0.1, 3.0)])
    feed(sched, meters, "m2", [(0.2, 5.0)])
    feed(sched, meters, "m3", [(0.3, 100.0)])
    handle = meters.view("strain")

    async def read(group):
        return await handle.get(group)

    a = sched.run_until_complete(read("A"))
    b = sched.run_until_complete(read("B"))
    assert a == {"count": 3, "total": 9.0, "mean": 3.0, "min": 1.0, "max": 5.0, "group": "A"}
    assert b["count"] == 1 and b["mean"] == 100.0
    # Drained: no deltas buffered or in flight, staleness reads zero.
    assert meters.views.pending_deltas() == 0
    assert meters.views.staleness_seconds() == 0.0
    assert meters.views.deltas_emitted() >= 3
    assert meters.views.flushes() >= 1


def test_global_group_when_group_by_is_none(sched, meters):
    meters.register_view(ViewDef(name="everything", source="Meter"))
    feed(sched, meters, "m1", [(0.0, 2.0)])
    feed(sched, meters, "m3", [(0.0, 4.0)])

    async def read():
        return await meters.view("everything").get()

    summary = sched.run_until_complete(read())
    assert summary["group"] == GLOBAL_GROUP
    assert summary["count"] == 2 and summary["mean"] == 3.0


def test_window_view_buckets_and_eviction(sched, meters):
    meters.register_view(
        ViewDef(
            name="rollup",
            source="Meter",
            group_by="org_id",
            kind="window",
            window_seconds=1.0,
            max_buckets=2,
        )
    )
    feed(sched, meters, "m1", [(0.5, 1.0), (1.5, 2.0)])
    feed(sched, meters, "m1", [(2.5, 3.0)])

    async def read():
        return await meters.view("rollup").buckets("A")

    buckets = sched.run_until_complete(read())
    # max_buckets=2: the oldest bucket (0.0) was evicted.
    assert [b[0] for b in buckets] == [1.0, 2.0]
    assert buckets[0][1]["count"] == 1 and buckets[0][1]["mean"] == 2.0


def test_topk_view_ranks_entities(sched, meters):
    meters.register_view(
        ViewDef(
            name="hot",
            source="Meter",
            group_by="org_id",
            kind="topk",
            k=2,
            rank_by="mean",
        )
    )
    feed(sched, meters, "m1", [(0.0, 10.0)])
    feed(sched, meters, "m2", [(0.0, 30.0)])

    async def read():
        return await meters.view("hot").top("A")

    ranked = sched.run_until_complete(read())
    assert [row["entity"] for row in ranked] == ["m2", "m1"]
    assert ranked[0]["mean"] == 30.0


def test_pull_fallback_matches_materialized(sched, meters):
    meters.register_view(ViewDef(name="strain", source="Meter", group_by="org_id"))
    feed(sched, meters, "m1", [(0.0, 2.0), (0.1, 4.0)])
    feed(sched, meters, "m2", [(0.2, 6.0)])
    pull = meters.view("scan", source="Meter", group_by="org_id")

    async def read():
        materialized = await meters.view("strain").get("A")
        scanned = await pull.get("A")
        return materialized, scanned

    materialized, scanned = sched.run_until_complete(read())
    assert materialized == scanned


# -- exactly-once: sequencing and dedup ----------------------------------------


def test_apply_deltas_is_idempotent_by_stream_sequence(sched, meters):
    meters.register_view(ViewDef(name="strain", source="Meter", group_by="org_id"))
    shard = shard_id("strain", "A")
    entries = [("A", "m1", 0.0, 2, 6.0, 1.0, 5.0)]

    async def main():
        ref = meters.ref(VIEW_ACTOR_TYPE, shard)
        first = await ref.ask("apply_deltas", "stream-x", 1, entries)
        replay = await ref.ask("apply_deltas", "stream-x", 1, entries)
        stale = await ref.ask("apply_deltas", "stream-x", 0, entries)
        fresh = await ref.ask("apply_deltas", "stream-x", 2, entries)
        summary = await ref.ask("get")
        accounting = await ref.ask("fold_accounting")
        return first, replay, stale, fresh, summary, accounting

    first, replay, stale, fresh, summary, accounting = sched.run_until_complete(main())
    assert first == {"applied": 2, "duplicate": False}
    assert replay == {"applied": 0, "duplicate": True}
    assert stale == {"applied": 0, "duplicate": True}
    assert fresh["duplicate"] is False
    # The duplicated and stale flushes folded nothing: 2 + 2 points, once.
    assert summary["count"] == 4
    assert accounting["duplicates"] == 2
    assert accounting["watermarks"] == {"stream-x": 2}


def test_emitting_insert_acks_cover_the_fold(sched, meters):
    """An acked add() is immediately visible — no read-your-writes gap."""
    meters.register_view(ViewDef(name="strain", source="Meter", group_by="org_id"))

    async def main():
        await meters.ref("Meter", "m1").add([(0.0, 7.0)])
        return await meters.view("strain").get("A")

    summary = sched.run_until_complete(main())
    assert summary["count"] == 1 and summary["total"] == 7.0
