"""The database's time-series read helpers over tiered channel actors."""

import pytest

from repro.shm import ShmPlatform, channel_id_for, sensor_id_for


@pytest.fixture
def platform(db):
    return ShmPlatform(db, window_capacity=256, block_size=16)


def test_timeseries_range_and_aggregate(sched, db, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        points = [(float(i), 10.0 + (i % 3)) for i in range(100)]
        await platform.ingest(sensor_id, {c0: points})
        raw = await db.timeseries_range(
            "PhysicalSensorChannel", c0, 20.0, 30.0
        )
        agg = await db.timeseries_aggregate(
            "PhysicalSensorChannel", c0, 0.0, 100.0
        )
        return points, raw, agg

    points, raw, agg = sched.run_until_complete(main())
    assert raw == points[20:30]
    assert agg["count"] == 100
    assert agg["min"] == 10.0
    assert agg["max"] == 12.0
    assert agg["sum"] == pytest.approx(sum(v for _, v in points))
