"""Tests for the declarative query layer."""

import pytest

from repro.errors import QueryError
from repro.runtime import Actor


class Sensor(Actor):
    indexed_attributes = ("project",)

    async def setup(self, project, value):
        self.set_indexed("project", project)
        self.state["value"] = value
        return True

    async def read(self):
        return self.state.get("value")

    async def scaled(self, factor):
        return self.state.get("value", 0) * factor


@pytest.fixture
def populated(sched, db):
    db.register_actor(Sensor)

    async def setup():
        data = [
            ("s1", "bridge-a", 10),
            ("s2", "bridge-a", 20),
            ("s3", "bridge-b", 30),
            ("s4", "bridge-b", 40),
            ("s5", "bridge-b", 50),
        ]
        for sensor_id, project, value in data:
            await db.ref("Sensor", sensor_id).setup(project, value)

    sched.run_until_complete(setup())
    return db


def test_query_with_index_criterion(sched, populated):
    async def main():
        query = populated.query("Sensor").where(project="bridge-a")
        rows = await query.call("read").run()
        return [(r.actor_id, r.value) for r in rows]

    assert sched.run_until_complete(main()) == [("s1", 10), ("s2", 20)]


def test_query_full_extent_scan(sched, populated):
    async def main():
        rows = await populated.query("Sensor").call("read").run()
        return sorted(r.value for r in rows)

    assert sched.run_until_complete(main()) == [10, 20, 30, 40, 50]


def test_query_with_args(sched, populated):
    async def main():
        rows = await (
            populated.query("Sensor")
            .where(project="bridge-b")
            .call("scaled", 2)
            .run()
        )
        return [r.value for r in rows]

    assert sched.run_until_complete(main()) == [60, 80, 100]


def test_query_filter_values(sched, populated):
    async def main():
        rows = await (
            populated.query("Sensor")
            .call("read")
            .filter_values(lambda v: v >= 30)
            .run()
        )
        return sorted(r.actor_id for r in rows)

    assert sched.run_until_complete(main()) == ["s3", "s4", "s5"]


def test_query_limit(sched, populated):
    async def main():
        return await populated.query("Sensor").limit(2).call("read").run()

    rows = sched.run_until_complete(main())
    assert len(rows) == 2


def test_query_count_and_ids(sched, populated):
    async def main():
        count = await populated.query("Sensor").where(project="bridge-b").count()
        ids = await populated.query("Sensor").where(project="bridge-a").ids()
        filtered = await (
            populated.query("Sensor")
            .call("read")
            .filter_values(lambda v: v > 45)
            .count()
        )
        return count, ids, filtered

    assert sched.run_until_complete(main()) == (3, ["s1", "s2"], 1)


def test_query_unindexed_criterion_rejected(populated):
    with pytest.raises(QueryError):
        populated.query("Sensor").where(value=10)


def test_query_unknown_type_rejected(populated):
    from repro.errors import UnknownActorTypeError

    with pytest.raises(UnknownActorTypeError):
        populated.query("Nope")


def test_query_without_call_rejected(sched, populated):
    async def main():
        await populated.query("Sensor").run()

    with pytest.raises(QueryError):
        sched.run_until_complete(main())


def test_query_negative_limit_rejected(populated):
    with pytest.raises(QueryError):
        populated.query("Sensor").limit(-1)


def test_query_empty_result(sched, populated):
    async def main():
        return await populated.query("Sensor").where(project="nope").call("read").run()

    assert sched.run_until_complete(main()) == []


def test_builder_steps_return_copies_not_aliases(sched, populated):
    """Regression: a kept partial query must not absorb its branches'
    criteria (each builder step returns a new Query)."""
    base = populated.query("Sensor").call("read")
    bridge_a = base.where(project="bridge-a")
    bridge_b = base.where(project="bridge-b")

    async def main():
        a = await bridge_a.run()
        b = await bridge_b.run()
        everything = await base.run()
        return a, b, everything

    a, b, everything = sched.run_until_complete(main())
    # The branches saw disjoint criteria; the base stayed unrestricted.
    assert [row.actor_id for row in a] == ["s1", "s2"]
    assert [row.actor_id for row in b] == ["s3", "s4", "s5"]
    assert len(everything) == 5


def test_builder_branches_do_not_share_call_or_limit(sched, populated):
    base = populated.query("Sensor").where(project="bridge-b")
    raw = base.call("read")
    scaled = base.call("scaled", 10).limit(1)

    async def main():
        return await raw.run(), await scaled.run()

    raw_rows, scaled_rows = sched.run_until_complete(main())
    assert [row.value for row in raw_rows] == [30, 40, 50]
    assert [row.value for row in scaled_rows] == [300]
    # limit() on the branch did not truncate the sibling's candidates.
    assert len(raw_rows) == 3


def test_filter_values_returns_a_new_query(sched, populated):
    base = populated.query("Sensor").call("read")
    hot = base.filter_values(lambda value: value >= 40)

    async def main():
        return await hot.run(), await base.run()

    hot_rows, all_rows = sched.run_until_complete(main())
    assert [row.value for row in hot_rows] == [40, 50]
    assert len(all_rows) == 5
