"""Unit tests for benchmark metrics (percentiles, windows, summaries)."""

import pytest

from repro.bench import LatencyRecorder, percentile


# -- percentile --------------------------------------------------------------


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 0.5)


def test_percentile_bounds_validated():
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_percentile_single_value():
    assert percentile([7.0], 0.999) == 7.0


def test_percentile_median_interpolates():
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5


def test_percentile_extremes():
    values = [float(i) for i in range(101)]
    assert percentile(values, 0.0) == 0.0
    assert percentile(values, 1.0) == 100.0
    assert percentile(values, 0.9) == pytest.approx(90.0)


def test_percentile_unsorted_input_is_callers_bug_but_deterministic():
    # Contract: values must be pre-sorted; we document by testing sorted use.
    values = sorted([5.0, 1.0, 3.0])
    assert percentile(values, 0.5) == 3.0


# -- recorder ------------------------------------------------------------------


def fill_recorder():
    recorder = LatencyRecorder()
    # 10 seconds of inserts at 100/s with 10 ms latency.
    for second in range(10):
        for i in range(100):
            recorder.record("insert", second + i / 100.0, 0.010)
    # Sparse queries.
    for second in range(10):
        recorder.record("raw", second + 0.5, 0.050)
    return recorder


def test_window_stats_trims_first_and_last():
    recorder = fill_recorder()
    stats = recorder.window_stats("insert", 1.0, 0.0, 10.0, trim=1)
    assert len(stats) == 8
    assert stats[0].start == 1.0
    assert all(w.throughput == pytest.approx(100.0) for w in stats)


def test_window_stats_no_trim():
    recorder = fill_recorder()
    stats = recorder.window_stats("insert", 1.0, 0.0, 10.0, trim=0)
    assert len(stats) == 10


def test_window_stats_too_few_windows_returns_empty():
    recorder = LatencyRecorder()
    recorder.record("insert", 0.5, 0.01)
    assert recorder.window_stats("insert", 1.0, 0.0, 2.0, trim=1) == []


def test_window_uses_completion_time():
    recorder = LatencyRecorder()
    # Sent in window 0, completes in window 1.
    recorder.record("insert", 0.9, 0.5)
    stats = recorder.window_stats("insert", 1.0, 0.0, 3.0, trim=0)
    assert stats[0].count == 0
    assert stats[1].count == 1


def test_summary_means_and_percentiles():
    recorder = fill_recorder()
    summary = recorder.summarize("insert", 1.0, 0.0, 10.0)
    assert summary is not None
    assert summary.requests == 800  # trimmed to 8 windows
    assert summary.throughput_mean == pytest.approx(100.0)
    assert summary.throughput_std == pytest.approx(0.0)
    assert summary.p50 == pytest.approx(0.010)
    assert summary.p999 == pytest.approx(0.010)


def test_summary_separates_kinds():
    recorder = fill_recorder()
    raw = recorder.summarize("raw", 1.0, 0.0, 10.0)
    assert raw.p50 == pytest.approx(0.050)
    assert raw.throughput_mean == pytest.approx(1.0)


def test_summary_none_when_no_data():
    recorder = LatencyRecorder()
    assert recorder.summarize("live", 1.0, 0.0, 10.0) is None


def test_invalid_window_rejected():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.window_stats("insert", 0.0, 0.0, 1.0)


def test_records_filter():
    recorder = fill_recorder()
    assert len(recorder.records("raw")) == 10
    assert len(recorder.records()) == 1010


# -- edge cases ----------------------------------------------------------------


def test_trim_consuming_all_windows_yields_empty_and_none():
    recorder = fill_recorder()
    # 10 windows, trim=5 from each side: nothing survives.
    assert recorder.window_stats("insert", 1.0, 0.0, 10.0, trim=5) == []
    assert recorder.summarize("insert", 1.0, 0.0, 10.0, trim=5) is None


def test_record_straddling_a_window_boundary_lands_once():
    recorder = LatencyRecorder()
    # Completion exactly on the boundary belongs to the *next* window
    # (floor division), and to exactly one window — never both.
    recorder.record("insert", 0.5, 0.5)  # completes at exactly 1.0
    stats = recorder.window_stats("insert", 1.0, 0.0, 3.0, trim=0)
    assert [w.count for w in stats] == [0, 1, 0]


def test_completion_at_range_end_is_excluded():
    recorder = LatencyRecorder()
    recorder.record("insert", 1.5, 0.5)  # completes at exactly end=2.0
    stats = recorder.window_stats("insert", 1.0, 0.0, 2.0, trim=0)
    assert [w.count for w in stats] == [0, 0]


def test_summary_for_empty_kind_is_none_even_with_other_traffic():
    recorder = fill_recorder()  # has 'insert' and 'raw', never 'live'
    assert recorder.summarize("live", 1.0, 0.0, 10.0) is None


def test_summary_when_only_trimmed_windows_had_records():
    recorder = LatencyRecorder()
    recorder.record("insert", 0.1, 0.01)  # first window (trimmed)
    recorder.record("insert", 9.1, 0.01)  # last window (trimmed)
    assert recorder.summarize("insert", 1.0, 0.0, 10.0) is None
