"""Tests of the load generator on small deployments."""

import pytest

from repro.bench import (
    LoadConfig,
    M5_LARGE,
    M5_XLARGE,
    build_deployment,
    execute,
    provision,
)


@pytest.fixture
def small_deployment():
    deployment = build_deployment([M5_LARGE], seed=17)
    deployment.scheduler.run_until_complete(provision(deployment, 20))
    return deployment


def test_provision_builds_paper_structure(small_deployment):
    report = small_deployment.report
    assert report.sensors == 20
    assert report.organizations == 1
    assert report.physical_channels == 40
    assert report.virtual_channels == 2


def test_provision_resets_cpu_accounting(small_deployment):
    for silo in small_deployment.runtime.silos():
        assert silo.cpu.busy_seconds == 0.0


def test_run_load_sustains_one_request_per_sensor_per_second(small_deployment):
    result = execute(small_deployment, LoadConfig(sensors=20, duration=6.0))
    summary = result.summary("insert")
    assert summary.throughput_mean == pytest.approx(20.0)
    assert summary.requests == 20 * 4  # 6s minus first+last trimmed windows


def test_run_load_records_queries_when_enabled(small_deployment):
    result = execute(
        small_deployment, LoadConfig(sensors=20, duration=6.0, with_queries=True)
    )
    assert result.summary("live") is not None
    assert result.summary("raw") is not None


def test_run_load_without_queries_records_none(small_deployment):
    result = execute(small_deployment, LoadConfig(sensors=20, duration=6.0))
    assert result.summary("live") is None


def test_run_requires_provision_first():
    deployment = build_deployment([M5_LARGE])
    with pytest.raises(RuntimeError):
        execute(deployment, LoadConfig(sensors=5, duration=2.0))


def test_multi_silo_partitioning_is_round_robin():
    deployment = build_deployment([M5_XLARGE, M5_XLARGE], seed=18)
    deployment.scheduler.run_until_complete(
        provision(deployment, 200, sensors_per_org=100)
    )
    # Each org's subtree landed on its own silo.
    silos = deployment.runtime.silos()
    counts = [silo.activation_count for silo in silos]
    assert counts[0] == counts[1]
    # Sensors of org-0 live on silo-0, org-1 on silo-1.
    from repro.runtime import ActorKey

    directory = deployment.runtime.directory
    assert directory.lookup(ActorKey("Sensor", "org-0/s-0")) == "silo-0"
    assert directory.lookup(ActorKey("Sensor", "org-1/s-0")) == "silo-1"


def test_deterministic_given_seed():
    results = []
    for _ in range(2):
        deployment = build_deployment([M5_LARGE], seed=99)
        deployment.scheduler.run_until_complete(provision(deployment, 30))
        result = execute(
            deployment, LoadConfig(sensors=30, duration=5.0, with_queries=True)
        )
        summary = result.summary("insert")
        results.append((summary.requests, summary.p50, summary.p999))
    assert results[0] == results[1]


def test_utilization_scales_with_sensors():
    utilizations = []
    for sensors in (100, 400):
        deployment = build_deployment([M5_LARGE], seed=5)
        deployment.scheduler.run_until_complete(provision(deployment, sensors))
        result = execute(deployment, LoadConfig(sensors=sensors, duration=4.0))
        utilizations.append(result.mean_utilization)
    assert utilizations[1] == pytest.approx(4 * utilizations[0], rel=0.05)
