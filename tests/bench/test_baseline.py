"""The perf-gate arithmetic: baseline JSON write/load/check."""

import pytest

from repro.bench.baseline import (
    P99_RISE_TOLERANCE,
    THROUGHPUT_DROP_TOLERANCE,
    check_against_baseline,
    load_baseline,
    write_baseline,
)


def row(sensors=600, servers=1, throughput=1000.0, p99=100.0):
    return {
        "sensors": sensors,
        "servers": servers,
        "offered_rps": float(sensors),
        "throughput_rps": throughput,
        "utilization": 0.5,
        "p50_ms": 50.0,
        "p99_ms": p99,
    }


def payload(mode="smoke", **row_kwargs):
    return {
        "bench": "fig6",
        "mode": mode,
        "title": "test",
        "series": {"fast": [row(**row_kwargs)], "seed": []},
        "summary": {},
    }


def baseline_for(fresh):
    return {"bench": "fig6", "modes": {fresh["mode"]: fresh}}


def test_identical_run_passes():
    fresh = payload()
    assert check_against_baseline(fresh, baseline_for(payload())) == []


def test_throughput_drop_within_tolerance_passes():
    ok = 1000.0 * (1 - THROUGHPUT_DROP_TOLERANCE) + 1
    fresh = payload(throughput=ok)
    assert check_against_baseline(fresh, baseline_for(payload())) == []


def test_throughput_drop_beyond_tolerance_fails():
    bad = 1000.0 * (1 - THROUGHPUT_DROP_TOLERANCE) - 1
    fresh = payload(throughput=bad)
    failures = check_against_baseline(fresh, baseline_for(payload()))
    assert len(failures) == 1
    assert "throughput" in failures[0]


def test_p99_rise_beyond_tolerance_fails():
    bad = 100.0 * (1 + P99_RISE_TOLERANCE) + 1
    fresh = payload(p99=bad)
    failures = check_against_baseline(fresh, baseline_for(payload()))
    assert len(failures) == 1
    assert "p99" in failures[0]


def test_improvements_always_pass():
    fresh = payload(throughput=5000.0, p99=10.0)
    assert check_against_baseline(fresh, baseline_for(payload())) == []


def test_points_match_on_sensors_and_servers():
    # A fresh point with no baseline counterpart is not gated (sweep grew).
    fresh = payload(sensors=900, throughput=1.0, p99=9999.0)
    assert check_against_baseline(fresh, baseline_for(payload())) == []


def test_missing_mode_is_a_failure():
    fresh = payload(mode="smoke")
    baseline = {"bench": "fig6", "modes": {"full": payload(mode="full")}}
    failures = check_against_baseline(fresh, baseline)
    assert len(failures) == 1
    assert "no 'smoke' mode" in failures[0]


def test_micro_variant_rows_are_gated():
    fresh = {
        "bench": "micro",
        "mode": "smoke",
        "series": {"fast": row(throughput=500.0)},
        "summary": {},
    }
    base = {
        "bench": "micro",
        "mode": "smoke",
        "series": {"fast": row(throughput=1000.0)},
        "summary": {},
    }
    failures = check_against_baseline(
        fresh, {"bench": "micro", "modes": {"smoke": base}}
    )
    assert len(failures) == 1


def test_write_baseline_merges_modes(tmp_path):
    target = tmp_path / "BENCH_fig6.json"
    write_baseline(target, {"full": payload(mode="full")})
    write_baseline(target, {"smoke": payload(mode="smoke")})
    document = load_baseline(target)
    assert set(document["modes"]) == {"full", "smoke"}
    assert document["bench"] == "fig6"
    # Re-writing one mode replaces it without touching the other.
    write_baseline(target, {"smoke": payload(mode="smoke", throughput=2.0)})
    document = load_baseline(target)
    assert (
        document["modes"]["smoke"]["series"]["fast"][0]["throughput_rps"] == 2.0
    )
    assert document["modes"]["full"]["series"]["fast"][0]["throughput_rps"] == 1000.0


def test_gate_thresholds_are_the_documented_ones():
    assert THROUGHPUT_DROP_TOLERANCE == pytest.approx(0.10)
    assert P99_RISE_TOLERANCE == pytest.approx(0.15)
