"""The views bench's invariants hold on the smoke run, and the gate works."""

import pytest

from repro.bench.baseline import check_against_baseline, load_baseline
from repro.bench.views import SMOKE_CONFIG, build_views


@pytest.fixture(scope="module")
def smoke_payload():
    # build_views raises RuntimeError on any violated invariant (read cost,
    # exactly-once, staleness); a clean return IS most of the assertion.
    return build_views(smoke=True)


def test_smoke_payload_shape(smoke_payload):
    assert smoke_payload["bench"] == "views"
    assert smoke_payload["mode"] == "smoke"
    assert set(smoke_payload["series"]) == {"materialized", "pull"}
    summary = smoke_payload["summary"]
    assert summary["exactly_once"] is True
    assert summary["read_cost_ratio"] >= 10.0
    assert summary["staleness_p99_ms"] <= summary["staleness_bound_ms"]


def test_materialized_reads_are_o_of_groups_asked(smoke_payload):
    materialized = smoke_payload["series"]["materialized"]
    pull = smoke_payload["series"]["pull"]
    assert materialized["asks_per_group_read"] <= 2.0
    # The pull scan pays one ask per sensor in the extent.
    assert pull["asks_per_group_read"] >= SMOKE_CONFIG.sensors


def test_chaos_run_really_exercised_the_dedup_path(smoke_payload):
    chaos = smoke_payload["checks"][0]["chaos"]
    assert chaos["injected_duplicates"] > 0
    assert chaos["injected_losses"] > 0
    assert chaos["points_folded"] == chaos["points_emitted"]
    assert chaos["failed_flushes"] == 0
    assert chaos["pending_deltas"] == 0


def test_committed_baseline_gates_the_fresh_smoke_run(smoke_payload):
    baseline = load_baseline("BENCH_views.json")
    assert check_against_baseline(smoke_payload, baseline) == []
    # And a regressed run fails it.
    import copy

    regressed = copy.deepcopy(smoke_payload)
    regressed["series"]["materialized"]["throughput_rps"] *= 0.5
    failures = check_against_baseline(regressed, baseline)
    assert failures and "throughput" in failures[0]
