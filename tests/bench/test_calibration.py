"""Tests tying the calibration to the paper's reported operating points."""

import pytest

from repro.bench import (
    M5_LARGE,
    M5_XLARGE,
    average_insert_cost,
    calibrated_config,
    instance,
    saturation_request_rate,
)


def test_m5_xlarge_is_1_5x_m5_large():
    """The paper's ECU ratio between the two instance types."""
    assert M5_XLARGE.capacity == pytest.approx(1.5 * M5_LARGE.capacity)


def test_single_server_saturation_matches_paper():
    """Figure 6's ~1,800 req/s on an m5.large."""
    rate = saturation_request_rate(M5_LARGE.capacity)
    assert rate == pytest.approx(1800, rel=0.02)


def test_paper_baseline_arithmetic():
    """§6.2: 1,800 -> 80% -> 1,400 -> x1.5 ECU -> 2,100 sensors/server."""
    saturation = saturation_request_rate(M5_LARGE.capacity)
    after_headroom = round(saturation * 0.8, -2)  # "rounding to nearest 100"
    assert after_headroom == 1400
    baseline = after_headroom * 1.5
    assert baseline == 2100


def test_xlarge_baseline_runs_below_saturation():
    """2,100 sensors must fit an m5.xlarge with query headroom."""
    demand = 2100 * average_insert_cost()
    assert demand / M5_XLARGE.capacity == pytest.approx(0.78, abs=0.03)


def test_calibrated_config_is_valid():
    config = calibrated_config()
    config.validate()
    assert ("Sensor", "ingest") in config.method_costs
    assert config.copy_messages is False


def test_instance_lookup():
    assert instance("m5.large") is M5_LARGE
    with pytest.raises(ValueError):
        instance("m6.mega")
