"""Tests for report formatting and the CLI wiring."""

import pytest

from repro.bench.cli import QUICK, RUNNERS, main
from repro.bench.experiments import AblationResult, FigPoint, FigResult
from repro.bench.metrics import Summary
from repro.bench.report import (
    format_ablation,
    format_latency_figure,
    format_result,
    format_throughput_figure,
)


def make_summary(kind="raw"):
    return Summary(
        kind=kind,
        requests=100,
        throughput_mean=10.0,
        throughput_std=0.5,
        latency_mean=0.1,
        latency_std=0.01,
        p50=0.1,
        p90=0.2,
        p99=0.3,
        p999=0.4,
    )


def make_fig(figure="fig6"):
    result = FigResult(figure, "A title", notes={"key": "value"})
    result.points.append(
        FigPoint(
            sensors=100,
            servers=1,
            offered_rps=100.0,
            throughput=99.0,
            throughput_std=1.0,
            utilization=0.5,
            insert=make_summary("insert"),
            live=make_summary("live"),
            raw=make_summary("raw"),
        )
    )
    return result


def test_throughput_table_contains_series():
    text = format_throughput_figure(make_fig())
    assert "sensors" in text
    assert "100" in text
    assert "99" in text
    assert "key: value" in text


def test_latency_table_renders_percentiles_in_ms():
    text = format_latency_figure(make_fig("fig8"), "raw")
    assert "p99.9 ms" in text
    assert "400" in text  # 0.4 s -> 400 ms


def test_latency_table_handles_missing_summary():
    fig = make_fig("fig9")
    fig.points[0].live = None
    text = format_latency_figure(fig, "live")
    assert "-" in text


def test_format_ablation_renders_rows():
    ablation = AblationResult(
        "demo", rows=[{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}], notes={"n": 2}
    )
    text = format_ablation(ablation)
    assert "demo" in text
    assert "2.5" in text
    assert "n: 2" in text


def test_format_ablation_empty():
    assert "no rows" in format_ablation(AblationResult("empty"))


def test_format_result_dispatch():
    assert "fig6" in format_result(make_fig("fig6"))
    assert "fig8" in format_result(make_fig("fig8"))
    assert "fig9" in format_result(make_fig("fig9"))
    assert "demo" in format_result(AblationResult("demo", rows=[{"x": 1}]))


def test_cli_quick_keys_are_valid_runners():
    assert set(QUICK) <= set(RUNNERS)


def test_cli_runs_one_quick_ablation(capsys):
    exit_code = main(["granularity", "--quick"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "granularity" in captured.out
    assert "model_a_actors" in captured.out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["fig99"])
