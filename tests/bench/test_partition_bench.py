"""The partition bench's safety invariants hold on scaled-down runs."""

import pytest

from repro.bench.partition import (
    MINORITY_SILO,
    PartitionInvariantError,
    _require,
    run_partition_scenario,
)

SEEDS = (101, 202)


@pytest.mark.parametrize("seed", SEEDS)
def test_netsplit_invariants_hold(seed):
    # run_partition_scenario raises PartitionInvariantError on any safety
    # violation (lost updates, dual writers, availability dips); a clean
    # return IS the assertion.
    row = run_partition_scenario("netsplit", sensors=6, seed=seed)
    assert row["availability"] == 1.0
    assert row["silos_quarantined"] >= 1
    assert row["silos_rejoined"] >= 1
    assert row["silos_evicted"] >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_zombie_invariants_hold(seed):
    row = run_partition_scenario("zombie", sensors=6, seed=seed)
    # The stale minority silo kept flushing: storage fencing had to reject
    # at least one of those writes, and nobody quarantined (the zombie mode
    # runs with quarantine_on_lease_loss off).
    assert row["fenced_writes"] > 0
    assert row["silos_quarantined"] == 0
    assert row["silos_rejoined"] >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_crash_invariants_hold(seed):
    row = run_partition_scenario("crash", sensors=6, seed=seed)
    # The silent crash of the minority silo lost at most one redo window;
    # the WAL replayed the journaled suffix on re-placement.
    assert row["wal_replayed"] > 0
    assert row["silos_evicted"] >= 1
    assert row["scenario"] == "crash"
    assert MINORITY_SILO == "silo-2"


def test_runs_are_deterministic_per_seed():
    first = run_partition_scenario("netsplit", sensors=6, seed=101)
    second = run_partition_scenario("netsplit", sensors=6, seed=101)
    assert first == second


def test_require_raises_the_typed_invariant_error():
    _require(True, "fine")
    with pytest.raises(PartitionInvariantError):
        _require(False, "lost updates detected")
