"""The tsbench's storage invariants hold on the smoke run, and the gate works."""

import copy

import pytest

from repro.bench.baseline import check_against_baseline, load_baseline
from repro.bench.tsbench import (
    COMPRESSION_FLOOR,
    MEMORY_RECLAIM_FLOOR,
    TsBenchInvariantError,
    build_tsbench,
    quantized_walk,
)


@pytest.fixture(scope="module")
def smoke_payload():
    # build_tsbench raises TsBenchInvariantError on any violated invariant
    # (memory floor, compression floor, scan ceiling, query equivalence,
    # conservation); a clean return IS most of the assertion.
    return build_tsbench(smoke=True)


def test_quantized_walk_is_deterministic_and_ordered():
    first = quantized_walk(seed=7, count=200)
    again = quantized_walk(seed=7, count=200)
    other = quantized_walk(seed=8, count=200)
    assert first == again
    assert first != other
    stamps = [ts for ts, _ in first]
    assert stamps == sorted(stamps)
    # Values live on the 1/256 fixed-point grid the compressor rewards.
    assert all((v * 256.0).is_integer() for _, v in first)


def test_smoke_payload_shape(smoke_payload):
    assert smoke_payload["bench"] == "tsblocks"
    assert smoke_payload["mode"] == "smoke"
    assert set(smoke_payload["series"]) == {"engine", "platform"}
    summary = smoke_payload["summary"]
    assert summary["memory_reclaimed_x"] >= MEMORY_RECLAIM_FLOOR
    assert summary["compression_ratio"] >= COMPRESSION_FLOOR
    assert summary["archive_blocks_sealed"] > 0


def test_platform_leg_conserved_points_across_tiers(smoke_payload):
    platform = smoke_payload["series"]["platform"]
    assert (
        platform["points_retained"] + platform["points_archived"]
        == platform["points_ingested"]
    )
    assert platform["points_archived"] > 0
    assert platform["storage_compression_ratio"] >= COMPRESSION_FLOOR
    # The tiered window really holds less memory than raw buffering would.
    assert (
        platform["sensor_live_bytes"]
        < platform["sensor_raw_equivalent_bytes"]
    )


def test_committed_baseline_gates_the_fresh_smoke_run(smoke_payload):
    baseline = load_baseline("BENCH_tsblocks.json")
    assert check_against_baseline(smoke_payload, baseline) == []
    # A compression regression fails the gate...
    regressed = copy.deepcopy(smoke_payload)
    regressed["series"]["engine"]["compression_ratio"] *= 0.5
    failures = check_against_baseline(regressed, baseline)
    assert failures and "compression_ratio" in failures[0]
    # ...and so does drift in the deterministic sealing counts.
    drifted = copy.deepcopy(smoke_payload)
    drifted["series"]["platform"]["points_archived"] += 1
    failures = check_against_baseline(drifted, baseline)
    assert failures and "points_archived" in failures[0]


def test_invariant_violations_raise_loudly():
    from repro.bench import tsbench

    original = tsbench.MEMORY_RECLAIM_FLOOR
    tsbench.MEMORY_RECLAIM_FLOOR = 1e9  # impossible floor
    try:
        with pytest.raises(TsBenchInvariantError):
            tsbench.build_tsbench(smoke=True)
    finally:
        tsbench.MEMORY_RECLAIM_FLOOR = original
