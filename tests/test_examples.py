"""Smoke tests: every shipped example must run to completion.

Examples are executed in-process (import-and-run via their ``main``
coroutines would couple the tests to internals; running the files keeps
them honest as standalone scripts) with a fresh interpreter each.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "quickstart complete",
    "shm_bridge_monitoring.py": "done (virtual time elapsed",
    "cattle_supply_chain.py": "supply chain example complete",
    "scale_out_cluster.py": "cluster example complete",
    "ingest_and_warehouse.py": "ingest & warehouse example complete",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script] in result.stdout


def test_every_example_has_a_smoke_test():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS)
