"""Group-commit write-behind: one round trip for N flushes, same durability."""

import pytest

from repro.errors import ConditionalCheckFailedError, ThrottledError
from repro.kernel import Scheduler
from repro.net.latency import ConstantLatency
from repro.storage import InMemoryKVStore, ProvisionedKVStore
from repro.storage.groupcommit import GroupCommitWriter


@pytest.fixture
def sched():
    return Scheduler()


# ---------------------------------------------------------------------------
# KeyValueStore.put_many (the storage half)
# ---------------------------------------------------------------------------


def test_put_many_default_impl_isolates_entry_failures(sched):
    store = InMemoryKVStore()

    async def main():
        await store.put("a", 1)
        return await store.put_many(
            [("a", 2, 1), ("b", 10, None), ("a", 99, 7)]
        )

    ok_a, ok_b, conflict = sched.run_until_complete(main())
    assert ok_a == 2
    assert ok_b == 1
    assert isinstance(conflict, ConditionalCheckFailedError)

    async def verify():
        return (await store.get("a")).value, (await store.get("b")).value

    assert sched.run_until_complete(verify()) == (2, 10)


def test_provisioned_put_many_charges_capacity_but_one_round_trip(sched):
    store = ProvisionedKVStore(
        sched, write_capacity_units=1000.0, latency=ConstantLatency(0.005)
    )

    async def main():
        started = sched.now
        results = await store.put_many(
            [(f"k{i}", {"v": i}, None) for i in range(8)]
        )
        return results, sched.now - started

    results, elapsed = sched.run_until_complete(main())
    assert results == [1] * 8
    # One BatchWriteItem round trip, not eight.
    assert elapsed == pytest.approx(0.005)
    assert store.write_batches == 1
    assert store.batched_round_trips_saved == 7
    # Capacity accounting stays honest: every item paid its write units.
    assert store.wcu_consumed == pytest.approx(8.0)


def test_provisioned_put_many_throttles_whole_batch(sched):
    store = ProvisionedKVStore(
        sched, write_capacity_units=2.0, on_overload="throttle"
    )

    async def main():
        with pytest.raises(ThrottledError):
            await store.put_many([(f"k{i}", {"v": i}, None) for i in range(50)])
        return await store.try_get("k0")

    assert sched.run_until_complete(main()) is None  # nothing landed


# ---------------------------------------------------------------------------
# GroupCommitWriter (the coalescing half)
# ---------------------------------------------------------------------------


def test_same_instant_puts_share_one_batch(sched):
    store = ProvisionedKVStore(
        sched, write_capacity_units=1000.0, latency=ConstantLatency(0.005)
    )
    writer = GroupCommitWriter(store, sched, max_batch=64, max_delay=0.0)

    async def main():
        tickets = [writer.put(f"k{i}", {"v": i}) for i in range(6)]
        return [await ticket for ticket in tickets]

    etags = sched.run_until_complete(main())
    assert etags == [1] * 6
    assert writer.batches == 1
    assert writer.largest_batch == 6
    assert writer.round_trips_saved == 5
    assert store.write_batches == 1


def test_batch_size_bound_flushes_early(sched):
    store = InMemoryKVStore()
    writer = GroupCommitWriter(store, sched, max_batch=2, max_delay=1.0)

    async def main():
        tickets = [writer.put(f"k{i}", i) for i in range(3)]
        # The first two flush at the size bound immediately; the third
        # waits for the window.
        await tickets[0]
        await tickets[1]
        sealed_at = sched.now
        await tickets[2]
        return sealed_at, sched.now

    sealed_at, last = sched.run_until_complete(main())
    assert sealed_at == 0.0
    assert last == pytest.approx(1.0)
    assert writer.batches == 2


def test_ack_means_durable(sched):
    """A resolved put future must mean the value is readable in the store."""
    store = ProvisionedKVStore(sched, latency=ConstantLatency(0.01))
    writer = GroupCommitWriter(store, sched, max_batch=64, max_delay=0.0)

    async def main():
        await writer.put("state", {"v": 42})
        return (await store.get("state")).value

    assert sched.run_until_complete(main()) == {"v": 42}


def test_conditional_conflict_fails_only_its_caller(sched):
    store = InMemoryKVStore()
    writer = GroupCommitWriter(store, sched, max_batch=64, max_delay=0.0)

    async def main():
        await store.put("a", 0)  # etag 1
        conflicted = writer.put("a", 1, expected_etag=9)
        clean = writer.put("b", 2)
        outcome = []
        try:
            await conflicted
            outcome.append("ok")
        except ConditionalCheckFailedError:
            outcome.append("conflict")
        outcome.append(await clean)
        return outcome

    assert sched.run_until_complete(main()) == ["conflict", 1]


def test_whole_batch_failure_rejects_every_ticket(sched):
    store = ProvisionedKVStore(
        sched, write_capacity_units=1.0, on_overload="throttle"
    )
    writer = GroupCommitWriter(store, sched, max_batch=64, max_delay=0.0)

    async def main():
        tickets = [writer.put(f"k{i}", {"v": "x" * 4096}) for i in range(4)]
        failures = 0
        for ticket in tickets:
            try:
                await ticket
            except ThrottledError:
                failures += 1
        return failures

    assert sched.run_until_complete(main()) == 4


def test_constructor_validation(sched):
    store = InMemoryKVStore()
    with pytest.raises(ValueError):
        GroupCommitWriter(store, sched, max_batch=0)
    with pytest.raises(ValueError):
        GroupCommitWriter(store, sched, max_delay=-1.0)
