"""Unit tests for the tiered, compressed time-series engine."""

import math

import pytest

from repro.storage.tsblocks import (
    BlockStats,
    SealedBlock,
    TieredSeries,
    decode_floats,
    decode_uints,
    decode_values,
    encode_floats,
    encode_uints,
    encode_values,
    merge_folds,
    summarize,
)


def walk(count, t0=1000.0, dt=1.0, v0=20.0):
    return [(t0 + i * dt, v0 + (i % 7) * 0.25) for i in range(count)]


# -- codecs --------------------------------------------------------------------


def test_uint_roundtrip_regular_and_irregular():
    regular = [1000 + 10 * i for i in range(500)]
    assert decode_uints(encode_uints(regular), len(regular)) == regular
    irregular = [0, 1, 5, 5, 6, 1 << 40, (1 << 40) + 3]
    assert decode_uints(encode_uints(irregular), len(irregular)) == irregular


def test_uint_regular_stream_costs_about_one_bit_per_point():
    regular = [1_000_000 + i for i in range(4096)]
    encoded = encode_uints(regular)
    # 8-byte header + ~1 bit per subsequent point.
    assert len(encoded) < 8 + 4096 // 8 + 16


def test_float_timestamp_roundtrip_is_exact():
    stamps = [1e9 + i * 0.1 for i in range(300)]
    decoded = decode_floats(encode_floats(stamps), len(stamps))
    assert all(a == b for a, b in zip(decoded, stamps))


def test_value_codec_roundtrips_special_floats():
    values = [1.5, 1.5, -0.0, 0.0, math.inf, -math.inf, math.nan, 2.25]
    decoded = decode_values(encode_values(values), len(values))
    assert len(decoded) == len(values)
    for got, expected in zip(decoded, values):
        if math.isnan(expected):
            assert math.isnan(got)
        else:
            assert got == expected
            # -0.0 == 0.0 compares equal; require the sign to survive too.
            assert math.copysign(1.0, got) == math.copysign(1.0, expected)


def test_value_codec_constant_run_is_one_bit_per_repeat():
    values = [42.5] * 1000
    encoded = encode_values(values)
    assert len(encoded) <= 8 + 1000 // 8 + 2
    assert decode_values(encoded, 1000) == values


def test_empty_codec_inputs():
    assert encode_uints([]) == b""
    assert decode_uints(b"", 0) == []
    assert encode_values([]) == b""
    assert decode_values(b"", 0) == []


# -- summaries & blocks --------------------------------------------------------


def test_summary_fields():
    pairs = [(1.0, 5.0), (2.0, -1.0), (3.0, 4.0)]
    summary = summarize(pairs)
    assert summary.count == 3
    assert summary.t_first == 1.0 and summary.t_last == 3.0
    assert summary.v_min == -1.0 and summary.v_max == 5.0
    assert summary.v_sum == 8.0


def test_summary_all_nan_extents_are_none():
    summary = summarize([(1.0, math.nan), (2.0, math.nan)])
    assert summary.v_min is None and summary.v_max is None
    assert summary.count == 2


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_merge_folds_matches_flat_fold():
    pairs = walk(100)
    merged = merge_folds([summarize(pairs[:40]), summarize(pairs[40:])])
    flat = summarize(pairs)
    assert merged["count"] == flat.count
    assert merged["min"] == flat.v_min and merged["max"] == flat.v_max
    assert merged["sum"] == pytest.approx(flat.v_sum)


def test_sealed_block_roundtrip_and_document():
    pairs = walk(64)
    block = SealedBlock.seal(pairs)
    assert block.decode() == pairs
    assert block.count == 64
    assert block.nbytes < 16 * 64  # actually compresses
    restored = SealedBlock.from_document(block.as_document())
    assert restored.decode() == pairs
    assert restored.summary == block.summary


# -- TieredSeries: writes, sealing, eviction -----------------------------------


def test_append_seals_full_blocks():
    series = TieredSeries(capacity=10_000, block_size=16)
    series.append_many(walk(40))
    assert series.sealed_blocks == 2
    assert len(series) == 40
    assert series.all_pairs() == walk(40)


def test_block_size_zero_is_a_raw_window():
    series = TieredSeries(capacity=100, block_size=0)
    series.append_many(walk(300))
    assert series.sealed_blocks == 0
    assert len(series) == 100
    assert series.all_pairs() == walk(300)[-100:]


def test_out_of_order_append_rejected():
    series = TieredSeries()
    series.append(5.0, 1.0)
    with pytest.raises(ValueError):
        series.append(4.0, 1.0)
    series.append(5.0, 2.0)  # equal timestamps are fine


def test_capacity_eviction_is_point_exact():
    series = TieredSeries(capacity=50, block_size=16)
    pairs = walk(173)
    evicted = []
    for offset in range(0, len(pairs), 7):
        for item in series.append_many(pairs[offset:offset + 7]):
            if isinstance(item, SealedBlock):
                evicted.extend(item.decode())
            else:
                evicted.append(item)
    assert len(series) == 50
    assert evicted + series.all_pairs() == pairs


def test_bulk_eviction_yields_whole_blocks():
    series = TieredSeries(capacity=64, block_size=16)
    series.append_many(walk(64))
    evicted = series.append_many(walk(64, t0=2000.0))
    blocks = [item for item in evicted if isinstance(item, SealedBlock)]
    assert blocks, "a 64-point overflow should evict whole sealed blocks"
    decoded = []
    for item in evicted:
        decoded.extend(item.decode() if isinstance(item, SealedBlock) else [item])
    assert decoded == walk(64)


# -- TieredSeries: reads -------------------------------------------------------


def test_range_stitches_old_blocks_and_head():
    series = TieredSeries(capacity=100, block_size=16)
    pairs = walk(230)
    for offset in range(0, len(pairs), 9):  # force a part-evicted old side
        series.append_many(pairs[offset:offset + 9])
    retained = pairs[-100:]
    t0, t1 = retained[3][0], retained[-3][0]
    expected = [p for p in retained if t0 <= p[0] < t1]
    assert series.range(t0, t1) == expected
    assert series.range(t1, t0) == []


def test_range_skips_blocks_outside_window():
    stats = BlockStats()
    series = TieredSeries(capacity=10_000, block_size=16, stats=stats)
    series.append_many(walk(160))
    series.range(1000.0, 1008.0)  # only the first block overlaps
    assert stats.blocks_considered == 10
    assert stats.blocks_skipped == 9
    assert stats.block_skip_rate == pytest.approx(0.9)


def test_tail_and_latest():
    series = TieredSeries(capacity=10_000, block_size=16)
    pairs = walk(100)
    series.append_many(pairs)
    assert series.latest() == pairs[-1]
    assert series.tail(3) == pairs[-3:]
    assert series.tail(50) == pairs[-50:]  # crosses into sealed blocks
    assert series.tail(0) == []
    assert TieredSeries().latest() is None


def test_aggregate_matches_raw_fold():
    series = TieredSeries(capacity=10_000, block_size=16)
    pairs = walk(200)
    series.append_many(pairs)
    t0, t1 = pairs[10][0], pairs[150][0]
    expected = summarize([p for p in pairs if t0 <= p[0] < t1])
    got = series.aggregate(t0, t1)
    assert got["count"] == expected.count
    assert got["min"] == expected.v_min and got["max"] == expected.v_max
    assert got["sum"] == pytest.approx(expected.v_sum)
    assert got["mean"] == pytest.approx(expected.v_sum / expected.count)


def test_aggregate_uses_summaries_for_covered_blocks():
    stats = BlockStats()
    series = TieredSeries(capacity=10_000, block_size=16, stats=stats)
    pairs = walk(160)
    series.append_many(pairs)
    series.aggregate(pairs[0][0], pairs[-1][0] + 1.0)
    assert stats.summary_answers == 10
    assert stats.blocks_decoded == 0


# -- stats & persistence -------------------------------------------------------


def test_stats_accounting_balances():
    stats = BlockStats()
    series = TieredSeries(capacity=50, block_size=16, stats=stats)
    series.append_many(walk(173))
    mem = series.memory_stats()
    assert stats.head_points == mem["head_points"]
    assert stats.block_bytes == mem["block_bytes"]
    assert stats.sealed_points == mem["sealed_points"]
    assert stats.compression_ratio > 1.0
    series.detach_stats()
    assert stats.head_points == 0
    assert stats.block_bytes == 0
    assert stats.sealed_points == 0
    assert series.stats is None
    series.detach_stats()  # idempotent


def test_document_roundtrip_preserves_pairs_and_tiers():
    series = TieredSeries(capacity=100, block_size=16)
    pairs = walk(230)
    for offset in range(0, len(pairs), 9):
        series.append_many(pairs[offset:offset + 9])
    doc = series.to_document()
    restored = TieredSeries.from_document(doc)
    assert restored.all_pairs() == series.all_pairs()
    assert restored.capacity == series.capacity
    assert restored.block_size == series.block_size
    # Appends keep working after a re-open, and eviction still honours
    # capacity exactly.
    restored.append_many(walk(30, t0=9000.0))
    assert len(restored) == 100


def test_document_restore_registers_stats():
    series = TieredSeries(capacity=100, block_size=16)
    series.append_many(walk(80))
    stats = BlockStats()
    restored = TieredSeries.from_document(series.to_document(), stats)
    mem = restored.memory_stats()
    assert stats.head_points == mem["head_points"]
    assert stats.sealed_points == mem["sealed_points"]
    assert stats.block_bytes == mem["block_bytes"]


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        TieredSeries(capacity=0)
    with pytest.raises(ValueError):
        TieredSeries(block_size=-1)
