"""Unit tests for serialization helpers."""

import pytest

from repro.storage import (
    NotSerializableError,
    ensure_serializable,
    estimate_size,
    snapshot,
)


def test_snapshot_isolates_mutable_values():
    original = {"list": [1, 2]}
    copy_ = snapshot(original)
    copy_["list"].append(3)
    assert original == {"list": [1, 2]}


def test_snapshot_passes_scalars_through():
    for value in (None, True, 42, 3.14, "text", b"bytes"):
        assert snapshot(value) is value


def test_snapshot_passes_scalar_tuples_through():
    value = (1, "a", None)
    assert snapshot(value) is value


def test_snapshot_copies_tuples_with_mutable_members():
    value = ([1], "a")
    copied = snapshot(value)
    assert copied is not value
    copied[0].append(2)
    assert value == ([1], "a")


def test_ensure_serializable_accepts_plain_data():
    ensure_serializable({"k": [1, (2, 3)]})


def test_ensure_serializable_rejects_lambdas():
    with pytest.raises(NotSerializableError):
        ensure_serializable(lambda: None)


def test_ensure_serializable_rejects_open_files(tmp_path):
    with open(tmp_path / "f.txt", "w") as handle:
        with pytest.raises(NotSerializableError):
            ensure_serializable({"file": handle})


def test_estimate_size_grows_with_payload():
    small = estimate_size("x")
    large = estimate_size("x" * 10_000)
    assert large > small + 9_000


def test_estimate_size_rejects_unpicklable():
    with pytest.raises(NotSerializableError):
        estimate_size(lambda: None)
