"""Unit tests for the in-memory key-value store."""

import pytest

from repro.errors import ConditionalCheckFailedError, KeyNotFoundError
from repro.kernel import run
from repro.storage import InMemoryKVStore


def test_put_then_get_round_trips():
    store = InMemoryKVStore()

    async def main():
        etag = await store.put("k", {"a": 1})
        item = await store.get("k")
        return etag, item

    etag, item = run(main())
    assert etag == 1
    assert item.value == {"a": 1}
    assert item.etag == 1


def test_get_missing_key_raises():
    store = InMemoryKVStore()

    async def main():
        await store.get("missing")

    with pytest.raises(KeyNotFoundError):
        run(main())


def test_try_get_missing_returns_none():
    store = InMemoryKVStore()

    async def main():
        return await store.try_get("missing")

    assert run(main()) is None


def test_etag_increments_per_write():
    store = InMemoryKVStore()

    async def main():
        first = await store.put("k", 1)
        second = await store.put("k", 2)
        return first, second

    assert run(main()) == (1, 2)


def test_conditional_put_requires_matching_etag():
    store = InMemoryKVStore()

    async def main():
        await store.put("k", "v1")
        await store.put("k", "v2", expected_etag=1)
        with pytest.raises(ConditionalCheckFailedError):
            await store.put("k", "v3", expected_etag=1)
        return (await store.get("k")).value

    assert run(main()) == "v2"


def test_conditional_create_with_etag_zero():
    store = InMemoryKVStore()

    async def main():
        await store.put("fresh", 1, expected_etag=0)
        with pytest.raises(ConditionalCheckFailedError):
            await store.put("fresh", 2, expected_etag=0)

    run(main())


def test_values_are_isolated_copies():
    store = InMemoryKVStore()
    document = {"nested": [1, 2]}

    async def main():
        await store.put("k", document)
        document["nested"].append(3)  # caller mutates after store
        first = await store.get("k")
        first.value["nested"].append(99)  # reader mutates their copy
        second = await store.get("k")
        return first.value, second.value

    first, second = run(main())
    assert first == {"nested": [1, 2, 99]}
    assert second == {"nested": [1, 2]}


def test_delete_reports_existence():
    store = InMemoryKVStore()

    async def main():
        await store.put("k", 1)
        return await store.delete("k"), await store.delete("k")

    assert run(main()) == (True, False)


def test_scan_by_prefix_sorted():
    store = InMemoryKVStore()

    async def main():
        await store.put("cow/2", "b")
        await store.put("cow/1", "a")
        await store.put("farm/1", "x")
        rows = await store.scan("cow/")
        return [(key, item.value) for key, item in rows]

    assert run(main()) == [("cow/1", "a"), ("cow/2", "b")]


def test_counters_track_operations():
    store = InMemoryKVStore()

    async def main():
        await store.put("k", 1)
        await store.try_get("k")
        await store.delete("k")

    run(main())
    assert store.writes == 1
    assert store.reads == 1
    assert store.deletes == 1
