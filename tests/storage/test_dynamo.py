"""Unit tests for the provisioned (DynamoDB-like) store."""

import pytest

from repro.errors import ThrottlingError
from repro.kernel import Scheduler
from repro.net import ConstantLatency
from repro.storage import ProvisionedKVStore


@pytest.fixture
def sched():
    return Scheduler()


def make_store(sched, **kwargs):
    kwargs.setdefault("latency", ConstantLatency(0.005))
    return ProvisionedKVStore(sched, **kwargs)


def test_requests_pay_latency(sched):
    store = make_store(sched)

    async def main():
        await store.put("k", "v")
        write_done = sched.now
        await store.get("k")
        return write_done, sched.now

    write_done, total = sched.run_until_complete(main())
    assert write_done == pytest.approx(0.005)
    assert total == pytest.approx(0.010)


def test_throttle_mode_raises_when_capacity_exhausted(sched):
    store = make_store(
        sched, write_capacity_units=5, on_overload="throttle"
    )

    async def main():
        # Burst capacity = 5 write units; the 6th small write must throttle.
        for i in range(5):
            await store.put(f"k{i}", "x")
        with pytest.raises(ThrottlingError):
            await store.put("k5", "x")
        return store.throttled_writes

    assert sched.run_until_complete(main()) == 1


def test_delay_mode_waits_for_refill_instead_of_failing(sched):
    store = make_store(
        sched, write_capacity_units=5, on_overload="delay", latency=ConstantLatency(0)
    )

    async def main():
        for i in range(6):
            await store.put(f"k{i}", "x")
        return sched.now

    elapsed = sched.run_until_complete(main())
    # Sixth write waited ~1/5 s for one write unit to accrue.
    assert elapsed == pytest.approx(0.2, abs=0.01)


def test_capacity_refills_over_time(sched):
    store = make_store(sched, write_capacity_units=5, on_overload="throttle")

    async def main():
        for i in range(5):
            await store.put(f"k{i}", "x")
        await sched.sleep(1.0)  # refill 5 units
        await store.put("later", "x")
        return store.writes

    assert sched.run_until_complete(main()) == 6


def test_large_values_cost_more_write_units(sched):
    store = make_store(sched, write_capacity_units=10, on_overload="throttle")
    big = "x" * 5000  # > 4 KiB => >= 5 write units of 1 KiB

    async def main():
        await store.put("big", big)
        await store.put("big2", big)
        with pytest.raises(ThrottlingError):
            await store.put("big3", big)

    sched.run_until_complete(main())


def test_read_after_missing_key_does_not_charge(sched):
    store = make_store(sched, read_capacity_units=1, on_overload="throttle")

    async def main():
        missing = await store.try_get("nope")
        await store.put("k", "v")
        found = await store.get("k")
        return missing, found.value

    missing, value = sched.run_until_complete(main())
    assert missing is None
    assert value == "v"


def test_scan_returns_prefix_rows(sched):
    store = make_store(sched, read_capacity_units=100)

    async def main():
        await store.put("a/1", 1)
        await store.put("a/2", 2)
        await store.put("b/1", 3)
        return [key for key, _ in await store.scan("a/")]

    assert sched.run_until_complete(main()) == ["a/1", "a/2"]


def test_invalid_overload_mode_rejected(sched):
    with pytest.raises(ValueError):
        ProvisionedKVStore(sched, on_overload="explode")
