"""Storage fault injection: throttle windows, random faults, transparency."""

import random

import pytest

from repro.errors import (
    InjectedFaultError,
    KeyNotFoundError,
    ThrottledError,
    ThrottlingError,
)
from repro.kernel import Scheduler
from repro.storage import ChaosKVStore, InMemoryKVStore, ProvisionedKVStore


@pytest.fixture
def sched():
    return Scheduler()


def chaos_store(sched, **kwargs):
    return ChaosKVStore(sched, InMemoryKVStore(), **kwargs)


def test_transparent_passthrough_when_unarmed(sched):
    store = chaos_store(sched)

    async def main():
        await store.put("k", {"a": 1})
        item = await store.get("k")
        listed = await store.scan("k")
        deleted = await store.delete("k")
        return item.value, len(listed), deleted

    assert sched.run_until_complete(main()) == ({"a": 1}, 1, True)
    assert store.injected_throttles == 0
    assert len(store) == 0


def test_throttle_window_raises_typed_error_with_hint(sched):
    store = chaos_store(sched, retry_after=0.5)
    store.throttle_between(0.0, 2.0)

    async def main():
        with pytest.raises(ThrottledError) as excinfo:
            await store.put("k", 1)
        return excinfo.value

    error = sched.run_until_complete(main())
    # ThrottledError is a ThrottlingError (and carries the backoff hint),
    # so generic throttling handlers and retry policies both recognise it.
    assert isinstance(error, ThrottlingError)
    assert 0.0 < error.retry_after <= 0.5
    assert store.injected_throttles == 1


def test_throttle_window_expires(sched):
    store = chaos_store(sched)
    store.throttle_between(0.0, 1.0, kinds=("write",))

    async def main():
        with pytest.raises(ThrottledError):
            await store.put("k", 1)
        await sched.at(1.0)  # window is half-open: [start, end)
        await store.put("k", 2)
        return (await store.get("k")).value

    assert sched.run_until_complete(main()) == 2


def test_throttle_retry_after_never_overshoots_window(sched):
    store = chaos_store(sched, retry_after=10.0)
    store.throttle_between(0.0, 1.0)

    async def main():
        await sched.at(0.75)
        with pytest.raises(ThrottledError) as excinfo:
            await store.get("k")
        return excinfo.value.retry_after

    # Backing off by retry_after lands just past the window, not 10 s out.
    assert sched.run_until_complete(main()) == pytest.approx(0.25)


def test_probabilistic_faults_are_seeded(sched):
    store = chaos_store(
        sched, rng=random.Random(7), read_fault_rate=0.5, write_fault_rate=0.5
    )

    async def main():
        for i in range(20):
            try:
                await store.put(f"k{i}", i)
            except InjectedFaultError:
                pass
            try:
                await store.get(f"k{i}")
            except (InjectedFaultError, KeyNotFoundError):
                pass

    sched.run_until_complete(main())
    # A fair coin over 20 ops of each kind: some fault, some pass.
    assert 0 < store.injected_write_faults < 20
    assert 0 < store.injected_read_faults < 20


def test_clear_faults_disarms_everything(sched):
    store = chaos_store(sched, read_fault_rate=1.0, write_fault_rate=1.0)
    store.throttle_between(0.0)

    async def main():
        with pytest.raises(ThrottledError):
            await store.put("k", 1)
        store.clear_faults()
        await store.put("k", 1)
        return (await store.get("k")).value

    assert sched.run_until_complete(main()) == 1


def test_validation_rejects_bad_rates(sched):
    with pytest.raises(ValueError):
        chaos_store(sched, read_fault_rate=1.5)
    with pytest.raises(ValueError):
        chaos_store(sched).throttle_between(0.0, kinds=("sideways",))


def test_dynamo_throttle_carries_retry_after(sched):
    store = ProvisionedKVStore(
        sched, read_capacity_units=4.0, write_capacity_units=4.0
    )

    async def main():
        await store.put("k", "x" * 2048)  # ~3 WCU: nearly drains the bucket
        with pytest.raises(ThrottledError) as excinfo:
            await store.put("k", "y" * 2048)
        return excinfo.value

    error = sched.run_until_complete(main())
    assert error.retry_after > 0.0
    assert store.throttled_writes == 1


def test_put_many_fails_the_whole_batch_like_a_lost_round_trip(sched):
    # A batched write shares one round trip, so a throttle window must fail
    # every entry — not silently land some and drop the rest.
    store = chaos_store(sched)
    store.throttle_between(0.0, 1.0, kinds=("write",))

    async def main():
        with pytest.raises(ThrottledError):
            await store.put_many([("a", 1, None), ("b", 2, None)])
        assert await store.try_get("a") is None
        assert await store.try_get("b") is None
        await sched.at(1.0)
        results = await store.put_many([("a", 1, None), ("b", 2, None)])
        return results

    assert sched.run_until_complete(main()) == [1, 1]
    assert store.injected_throttles == 1


def test_group_commit_batch_through_chaos_rejects_every_ticket(sched):
    # Regression: GroupCommitWriter coalesces tickets into one put_many; if
    # the chaos layer only faulted put(), batched flushes would dodge every
    # scripted outage and chaos runs would overstate durability.
    from repro.storage.groupcommit import GroupCommitWriter

    store = chaos_store(sched)
    store.throttle_between(0.0, 1.0, kinds=("write",))
    writer = GroupCommitWriter(store, sched, max_batch=8, max_delay=0.0)

    async def main():
        first = writer.put("a", {"v": 1})
        second = writer.put("b", {"v": 2})
        failures = []
        for ticket in (first, second):
            try:
                await ticket
            except ThrottledError as error:
                failures.append(error)
        return failures

    failures = sched.run_until_complete(main())
    assert len(failures) == 2
    assert store.injected_throttles == 1  # one round trip, one fault roll
    assert len(store) == 0


def test_chaos_wrapper_exported_from_storage_package():
    import repro.storage as storage

    assert storage.ChaosKVStore is ChaosKVStore
    assert storage.ThrottledError is ThrottledError
