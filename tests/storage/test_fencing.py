"""Fenced conditional writes: stale-writer rejection across store layers."""

import pytest

from repro.errors import FencedWriteError
from repro.kernel import Scheduler
from repro.net import ConstantLatency
from repro.storage import ChaosKVStore, InMemoryKVStore, ProvisionedKVStore
from repro.storage.groupcommit import GroupCommitWriter


@pytest.fixture
def sched():
    return Scheduler()


def run(sched, coro):
    return sched.run_until_complete(coro)


def test_fenced_put_admits_monotonic_fences(sched):
    store = InMemoryKVStore()

    async def main():
        await store.fenced_put("k", {"v": 1}, fence=1)
        await store.fenced_put("k", {"v": 2}, expected_etag=1, fence=2)
        # Re-using the current fence is fine (same writer, many flushes).
        await store.fenced_put("k", {"v": 3}, expected_etag=2, fence=2)
        return (await store.get("k")).value

    assert run(sched, main()) == {"v": 3}
    assert store.fenced_writes == 0


def test_stale_fence_is_rejected_and_counted(sched):
    store = InMemoryKVStore()

    async def main():
        await store.fenced_put("k", {"v": "new"}, fence=7)
        with pytest.raises(FencedWriteError):
            await store.fenced_put("k", {"v": "zombie"}, fence=3)
        return (await store.get("k")).value

    assert run(sched, main()) == {"v": "new"}
    assert store.fenced_writes == 1


def test_advance_fence_rejects_writes_that_land_later(sched):
    # The successor bumps the floor at load time, *before* writing anything:
    # a zombie flush that lands in between must still bounce.
    store = InMemoryKVStore()

    async def main():
        await store.fenced_put("k", {"v": "old"}, fence=1)
        await store.advance_fence("k", 5)
        with pytest.raises(FencedWriteError):
            await store.fenced_put("k", {"v": "zombie"}, fence=1)
        await store.fenced_put("k", {"v": "successor"}, expected_etag=1, fence=5)
        return (await store.get("k")).value

    assert run(sched, main()) == {"v": "successor"}


def test_unfenced_puts_are_unaffected(sched):
    store = InMemoryKVStore()

    async def main():
        await store.fenced_put("k", {"v": 1}, fence=9)
        # fence=None writers (fencing disabled) bypass the floor entirely.
        await store.put("k", {"v": 2}, expected_etag=1)
        await store.fenced_put("k", {"v": 3}, expected_etag=2, fence=None)
        return (await store.get("k")).value

    assert run(sched, main()) == {"v": 3}
    assert store.fenced_writes == 0


def test_fenced_put_many_isolates_rejections(sched):
    store = InMemoryKVStore()

    async def main():
        await store.advance_fence("b", 10)
        results = await store.fenced_put_many(
            [
                ("a", {"v": 1}, None, 2),
                ("b", {"v": 1}, None, 3),  # stale: floor is 10
                ("c", {"v": 1}, None, None),
            ]
        )
        return results

    results = run(sched, main())
    assert results[0] == 1 and results[2] == 1
    assert isinstance(results[1], FencedWriteError)
    assert store.fenced_writes == 1


def test_provisioned_store_delegates_fences_to_inner(sched):
    store = ProvisionedKVStore(
        sched,
        read_capacity_units=100.0,
        write_capacity_units=100.0,
        latency=ConstantLatency(0.001),
    )

    async def main():
        await store.fenced_put("k", {"v": 1}, fence=4)
        # advance_fence is control-plane: no write units, no round trip.
        consumed_before = store.wcu_consumed
        await store.advance_fence("k", 9)
        assert store.wcu_consumed == consumed_before
        with pytest.raises(FencedWriteError):
            await store.fenced_put("k", {"v": 2}, expected_etag=1, fence=4)
        return store.fenced_writes

    assert run(sched, main()) == 1


def test_chaos_store_passes_fences_through(sched):
    inner = InMemoryKVStore()
    store = ChaosKVStore(sched, inner)

    async def main():
        await store.fenced_put("k", {"v": 1}, fence=2)
        await store.advance_fence("k", 6)
        with pytest.raises(FencedWriteError):
            await store.fenced_put("k", {"v": 2}, expected_etag=1, fence=2)
        return store.fenced_writes

    assert run(sched, main()) == 1


def test_group_commit_surfaces_fence_rejection_per_ticket(sched):
    store = InMemoryKVStore()
    writer = GroupCommitWriter(store, sched, max_batch=8, max_delay=0.0)

    async def main():
        await store.advance_fence("stale", 10)
        ok = writer.put("fresh", {"v": 1}, fence=3)
        bad = writer.put("stale", {"v": 1}, fence=2)
        etag = await ok
        with pytest.raises(FencedWriteError):
            await bad
        return etag

    assert run(sched, main()) == 1
    assert (run(sched, store.get("fresh"))).value == {"v": 1}
    assert run(sched, store.try_get("stale")) is None
