"""RedoJournal: bounded-loss write-ahead logging for lazy write policies."""

import pytest

from repro.kernel import Scheduler
from repro.obs import MetricsRegistry
from repro.storage import InMemoryKVStore, RedoJournal
from repro.storage.groupcommit import GroupCommitWriter


@pytest.fixture
def sched():
    return Scheduler()


def run(sched, coro):
    return sched.run_until_complete(coro)


def test_append_and_replay_newest_matching_record(sched):
    journal = RedoJournal(sched)

    async def main():
        await journal.append("k", {"n": 1}, base_etag=3, fence=2)
        await journal.append("k", {"n": 2}, base_etag=3, fence=2)
        return journal.replay_for("k", stored_etag=3, fence=5)

    record = run(sched, main())
    assert record is not None
    assert record.document == {"n": 2}
    assert journal.appends == 2
    assert journal.replayed_records == 1


def test_replay_requires_matching_base_etag(sched):
    # A record based on etag 3 is a stale branch if the store now holds
    # etag 4 — replaying it would resurrect overwritten state.
    journal = RedoJournal(sched)
    run(sched, journal.append("k", {"n": 1}, base_etag=3, fence=1))
    assert journal.replay_for("k", stored_etag=4, fence=9) is None
    assert journal.replayed_records == 0


def test_replay_never_applies_records_from_a_newer_fence(sched):
    journal = RedoJournal(sched)
    run(sched, journal.append("k", {"n": 1}, base_etag=0, fence=7))
    # A successor with fence 5 must not apply a fence-7 record.
    assert journal.replay_for("k", stored_etag=0, fence=5) is None
    assert journal.replay_for("k", stored_etag=0, fence=7) is not None


def test_identical_tail_documents_are_deduplicated(sched):
    journal = RedoJournal(sched)

    async def main():
        await journal.append("k", {"n": 1}, base_etag=0, fence=1)
        await journal.append("k", {"n": 1}, base_etag=0, fence=1)  # same bytes
        await journal.append("k", {"n": 1}, base_etag=0, fence=2)  # new fence

    run(sched, main())
    assert journal.appends == 2
    assert journal.skipped_appends == 1
    assert journal.pending_records("k") == 2


def test_fence_floor_blocks_zombie_appends(sched):
    journal = RedoJournal(sched)
    journal.advance_fence("k", 10)
    record = run(sched, journal.append("k", {"n": 1}, base_etag=0, fence=3))
    assert record is None
    assert journal.appends == 0
    assert journal.skipped_appends == 1
    # The successor itself still journals fine.
    assert run(sched, journal.append("k", {"n": 2}, base_etag=0, fence=10))


def test_truncate_drops_records_after_flush(sched):
    journal = RedoJournal(sched)

    async def main():
        await journal.append("a", {"n": 1}, base_etag=0, fence=1)
        await journal.append("a", {"n": 2}, base_etag=0, fence=1)
        await journal.append("b", {"n": 1}, base_etag=0, fence=1)

    run(sched, main())
    assert journal.truncate("a") == 2
    assert journal.truncated_records == 2
    assert journal.pending_records() == 1
    assert journal.replay_for("a", stored_etag=0, fence=1) is None


def test_durable_copies_land_under_wal_prefix(sched):
    store = InMemoryKVStore()
    journal = RedoJournal(sched, store=store)
    record = run(sched, journal.append("state/C/ch-1", {"n": 1}, base_etag=2, fence=4))
    item = run(sched, store.get(f"wal/state/C/ch-1/{record.seq}"))
    assert item.value["document"] == {"n": 1}
    assert item.value["base_etag"] == 2
    assert item.value["fence"] == 4


def test_appends_ride_the_group_commit_writer(sched):
    store = InMemoryKVStore()
    writer = GroupCommitWriter(store, sched, max_batch=8, max_delay=0.0)
    journal = RedoJournal(sched, store=store, writer=writer)

    async def main():
        await journal.append("k", {"n": 1}, base_etag=0, fence=1)

    run(sched, main())
    assert writer.batches >= 1
    assert run(sched, store.try_get("wal/k/1")) is not None


def test_register_metrics_exports_counters(sched):
    journal = RedoJournal(sched)
    registry = MetricsRegistry()
    journal.register_metrics(registry)
    run(sched, journal.append("k", {"n": 1}, base_etag=0, fence=1))
    journal.replay_for("k", stored_etag=0, fence=1)
    values = registry.snapshot()
    assert values["wal.appends"] == 1
    assert values["wal.replayed_records"] == 1
    assert values["wal.pending_records"] == 1
