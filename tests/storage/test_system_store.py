"""Unit tests for the system store (membership + reminders)."""

import pytest

from repro.errors import SiloUnavailableError
from repro.kernel import Scheduler
from repro.storage import SystemStore


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def store(sched):
    return SystemStore(sched, lease_seconds=10)


def test_announce_and_active_list(store):
    store.announce("silo-b")
    store.announce("silo-a")
    assert store.active_silos() == ["silo-a", "silo-b"]


def test_lease_expiry_marks_suspected(sched, store):
    store.announce("silo-a")
    sched.run_for(11)
    assert store.status_of("silo-a") == "suspected"
    assert store.active_silos() == []


def test_refresh_lease_keeps_silo_active(sched, store):
    store.announce("silo-a")
    sched.run_for(8)
    store.refresh_lease("silo-a")
    sched.run_for(8)
    assert store.status_of("silo-a") == "active"


def test_refresh_unknown_silo_raises(store):
    with pytest.raises(SiloUnavailableError):
        store.refresh_lease("ghost")


def test_retire_marks_dead_even_with_valid_lease(store):
    store.announce("silo-a")
    store.retire("silo-a")
    assert store.status_of("silo-a") == "dead"
    assert store.active_silos() == []


def test_reannounce_revives_dead_silo(store):
    store.announce("silo-a")
    store.retire("silo-a")
    store.announce("silo-a")
    assert store.status_of("silo-a") == "active"


def test_status_of_unknown_silo_raises(store):
    with pytest.raises(SiloUnavailableError):
        store.status_of("ghost")


def test_membership_metadata_stored(store):
    entry = store.announce("silo-a", instance_type="m5.xlarge")
    assert entry.metadata == {"instance_type": "m5.xlarge"}


def test_register_and_list_reminders(sched, store):
    store.register_reminder("shm/org-1", "hourly-agg", period=3600)
    store.register_reminder("shm/org-1", "daily-agg", period=86400)
    store.register_reminder("shm/org-2", "hourly-agg", period=3600)
    names = {r.name for r in store.reminders_for("shm/org-1")}
    assert names == {"hourly-agg", "daily-agg"}
    assert len(store.all_reminders()) == 3


def test_reminder_replacement_and_removal(store):
    store.register_reminder("a", "r", period=10)
    store.register_reminder("a", "r", period=20)
    reminders = store.reminders_for("a")
    assert len(reminders) == 1
    assert reminders[0].period == 20
    assert store.unregister_reminder("a", "r")
    assert not store.unregister_reminder("a", "r")


def test_reminder_first_due_defaults_to_now_plus_period(sched, store):
    sched.run_for(5)
    reminder = store.register_reminder("a", "r", period=10)
    assert reminder.first_due == 15


def test_reminder_period_must_be_positive(store):
    with pytest.raises(ValueError):
        store.register_reminder("a", "r", period=0)
