"""Unit tests for the append-only archive log."""

import pytest

from repro.storage import ArchiveLog


@pytest.fixture
def log():
    return ArchiveLog()


def test_append_and_read_range(log):
    for ts in [1.0, 2.0, 3.0, 4.0]:
        log.append("chan-1", ts, {"v": ts})
    records = log.read_range("chan-1", 2.0, 4.0)
    assert [r.timestamp for r in records] == [2.0, 3.0]


def test_range_is_half_open(log):
    log.append("s", 1.0, "a")
    log.append("s", 2.0, "b")
    records = log.read_range("s", 1.0, 2.0)
    assert [r.payload for r in records] == ["a"]


def test_out_of_order_append_rejected(log):
    log.append("s", 5.0, "a")
    with pytest.raises(ValueError):
        log.append("s", 4.0, "b")


def test_equal_timestamps_allowed(log):
    log.append("s", 1.0, "a")
    log.append("s", 1.0, "b")
    assert [r.payload for r in log.read_range("s", 1.0, 1.5)] == ["a", "b"]


def test_streams_are_independent(log):
    log.append("a", 10.0, 1)
    log.append("b", 1.0, 2)  # older than stream a's head: fine
    assert log.streams() == ["a", "b"]
    assert len(log) == 2


def test_sequence_numbers_are_global_and_increasing(log):
    first = log.append("a", 1.0, None)
    second = log.append("b", 1.0, None)
    assert second.sequence == first.sequence + 1


def test_tail(log):
    for ts in range(5):
        log.append("s", float(ts), ts)
    assert [r.payload for r in log.tail("s", 2)] == [3, 4]
    assert log.tail("s", 0) == []
    assert [r.payload for r in log.tail("s", 99)] == [0, 1, 2, 3, 4]
    with pytest.raises(ValueError):
        log.tail("s", -1)


def test_extend_appends_many(log):
    records = log.extend("s", [(1.0, "a"), (2.0, "b")])
    assert len(records) == 2
    assert len(log) == 2


def test_export_with_transform(log):
    log.append("s", 1.0, {"value": 10})
    log.append("s", 2.0, {"value": 20})
    rows = log.export("s", transform=lambda r: (r.timestamp, r.payload["value"]))
    assert rows == [(1.0, 10), (2.0, 20)]


def test_export_missing_stream_is_empty(log):
    assert log.export("nothing") == []


def test_read_range_missing_stream_is_empty(log):
    assert log.read_range("nothing", 0, 100) == []


# -- the block-compressed tier -------------------------------------------------


def test_numeric_head_seals_into_blocks():
    log = ArchiveLog(block_size=8)
    for ts in range(20):
        log.append("s", float(ts), ts * 0.5)
    assert log.blocks_sealed == 2
    assert log.sealed_records == 16
    assert log.block_bytes > 0
    records = log.read_range("s", 0.0, 20.0)
    assert [r.timestamp for r in records] == [float(t) for t in range(20)]
    assert [r.payload for r in records] == [t * 0.5 for t in range(20)]


def test_sealing_preserves_global_sequences():
    log = ArchiveLog(block_size=4)
    expected = []
    for ts in range(10):
        stream = "a" if ts % 2 == 0 else "b"
        expected.append((stream, log.append(stream, float(ts), 1.0).sequence))
    for stream in ("a", "b"):
        got = [r.sequence for r in log.read_range(stream, 0.0, 100.0)]
        assert got == [seq for s, seq in expected if s == stream]


def test_append_block_archives_without_decoding():
    from repro.storage import SealedBlock

    log = ArchiveLog(block_size=64)
    pairs = [(float(i), i * 0.25) for i in range(32)]
    count = log.append_block("s", SealedBlock.seal(pairs))
    assert count == 32
    assert log.records_decoded == 0  # archived compressed, never decoded
    assert len(log) == 32
    records = log.read_range("s", 0.0, 100.0)
    assert [(r.timestamp, r.payload) for r in records] == pairs
    sequences = [r.sequence for r in records]
    assert sequences == list(range(sequences[0], sequences[0] + 32))


def test_append_block_seals_pending_head_first():
    from repro.storage import SealedBlock

    log = ArchiveLog(block_size=64)
    log.append("s", 1.0, 0.5)
    log.append("s", 2.0, 0.75)
    log.append_block("s", SealedBlock.seal([(3.0, 1.0), (4.0, 1.25)]))
    assert log.blocks_sealed == 1  # the 2-record head was sealed
    records = log.read_range("s", 0.0, 100.0)
    assert [r.timestamp for r in records] == [1.0, 2.0, 3.0, 4.0]
    assert [r.sequence for r in records] == sorted(
        r.sequence for r in records
    )


def test_append_block_out_of_order_rejected():
    from repro.storage import SealedBlock

    log = ArchiveLog()
    log.append("s", 10.0, 1.0)
    with pytest.raises(ValueError):
        log.append_block("s", SealedBlock.seal([(5.0, 1.0)]))


def test_non_float_payload_keeps_stream_raw():
    log = ArchiveLog(block_size=4)
    for ts in range(10):
        log.append("s", float(ts), {"v": ts})
    assert log.blocks_sealed == 0
    assert [r.payload["v"] for r in log.read_range("s", 0.0, 100.0)] == list(
        range(10)
    )


def test_append_block_unrolls_into_raw_stream():
    from repro.storage import SealedBlock

    log = ArchiveLog(block_size=1000)
    log.append("s", 1.0, "event")  # flips the stream to raw-only
    log.append_block("s", SealedBlock.seal([(2.0, 0.5), (3.0, 0.75)]))
    records = log.read_range("s", 0.0, 100.0)
    assert [r.payload for r in records] == ["event", 0.5, 0.75]
    assert log.blocks_sealed == 0


def test_range_reads_skip_non_overlapping_blocks():
    log = ArchiveLog(block_size=10)
    for ts in range(100):
        log.append("s", float(ts), 1.0)
    log.records_decoded = 0
    records = log.read_range("s", 42.0, 44.0)
    assert [r.timestamp for r in records] == [42.0, 43.0]
    assert log.records_decoded == 10  # exactly one block decoded


def test_tail_and_export_cross_tiers():
    log = ArchiveLog(block_size=8)
    for ts in range(20):
        log.append("s", float(ts), float(ts))
    assert [r.timestamp for r in log.tail("s", 6)] == [
        14.0, 15.0, 16.0, 17.0, 18.0, 19.0,
    ]
    assert log.export("s", transform=lambda r: r.timestamp) == [
        float(t) for t in range(20)
    ]
