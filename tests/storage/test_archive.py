"""Unit tests for the append-only archive log."""

import pytest

from repro.storage import ArchiveLog


@pytest.fixture
def log():
    return ArchiveLog()


def test_append_and_read_range(log):
    for ts in [1.0, 2.0, 3.0, 4.0]:
        log.append("chan-1", ts, {"v": ts})
    records = log.read_range("chan-1", 2.0, 4.0)
    assert [r.timestamp for r in records] == [2.0, 3.0]


def test_range_is_half_open(log):
    log.append("s", 1.0, "a")
    log.append("s", 2.0, "b")
    records = log.read_range("s", 1.0, 2.0)
    assert [r.payload for r in records] == ["a"]


def test_out_of_order_append_rejected(log):
    log.append("s", 5.0, "a")
    with pytest.raises(ValueError):
        log.append("s", 4.0, "b")


def test_equal_timestamps_allowed(log):
    log.append("s", 1.0, "a")
    log.append("s", 1.0, "b")
    assert [r.payload for r in log.read_range("s", 1.0, 1.5)] == ["a", "b"]


def test_streams_are_independent(log):
    log.append("a", 10.0, 1)
    log.append("b", 1.0, 2)  # older than stream a's head: fine
    assert log.streams() == ["a", "b"]
    assert len(log) == 2


def test_sequence_numbers_are_global_and_increasing(log):
    first = log.append("a", 1.0, None)
    second = log.append("b", 1.0, None)
    assert second.sequence == first.sequence + 1


def test_tail(log):
    for ts in range(5):
        log.append("s", float(ts), ts)
    assert [r.payload for r in log.tail("s", 2)] == [3, 4]
    assert log.tail("s", 0) == []
    assert [r.payload for r in log.tail("s", 99)] == [0, 1, 2, 3, 4]
    with pytest.raises(ValueError):
        log.tail("s", -1)


def test_extend_appends_many(log):
    records = log.extend("s", [(1.0, "a"), (2.0, "b")])
    assert len(records) == 2
    assert len(log) == 2


def test_export_with_transform(log):
    log.append("s", 1.0, {"value": 10})
    log.append("s", 2.0, {"value": 20})
    rows = log.export("s", transform=lambda r: (r.timestamp, r.payload["value"]))
    assert rows == [(1.0, 10), (2.0, 20)]


def test_export_missing_stream_is_empty(log):
    assert log.export("nothing") == []


def test_read_range_missing_stream_is_empty(log):
    assert log.read_range("nothing", 0, 100) == []
