"""Property: the flight recorder is bit-for-bit deterministic per seed.

Identical seeds must reproduce identical retained-trace sets *and*
identical postmortem timelines — the recorder's whole value is that an
incident dump can be replayed and compared across runs, which dies the
moment retention sampling or timeline assembly consults wall-clock time,
hash order, or an unseeded RNG.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.obs.recorder import FlightRecorder, RecorderConfig
from repro.obs.trace import Tracer
from repro.runtime import Actor, AodbRuntime, RuntimeConfig


class Device(Actor):
    async def work(self, amount, hold, fail):
        if hold:
            await self.context.runtime.scheduler.sleep(hold)
        if fail:
            raise RuntimeError("injected device fault")
        return amount


def run_once(seed, operations, tail_keep_rate):
    sched = Scheduler()
    runtime = AodbRuntime(
        sched,
        config=RuntimeConfig(
            default_method_cost=0.001, activation_cost=0.0, seed=seed
        ),
        network=Network(sched, lan=ConstantLatency(0.0005)),
        tracer=Tracer(enabled=True),
    )
    for i in range(3):
        runtime.add_silo(f"silo-{i}", cores=2)
    runtime.register_actor(Device)
    recorder = FlightRecorder(
        sched,
        RecorderConfig(tail_keep_rate=tail_keep_rate, min_latency_samples=8),
        seed=seed,
    ).attach(runtime)

    async def main():
        for target, hold, fail in operations:
            try:
                await runtime.ref("Device", f"d{target}").work(
                    1, hold, fail
                )
            except Exception:
                pass

    sched.run_until_complete(main())
    postmortem = recorder.record_incident(
        "probe", {"rule": "determinism", "at": sched.now}
    )
    retained = [
        (rt.trace_id, rt.reason, len(rt.spans), rt.root.status, rt.retained_at)
        for rt in recorder.retained()
    ]
    counters = (
        recorder.completed_traces,
        recorder.downsampled_traces,
        dict(recorder.downsampled_by_kind),
        recorder.retained_evicted,
    )
    return retained, counters, postmortem.timeline, sched.now


@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),       # target actor
            st.floats(min_value=0.0, max_value=0.02),    # hold time
            st.booleans(),                               # inject a fault
        ),
        min_size=5,
        max_size=40,
    ),
    seed=st.integers(min_value=0, max_value=50),
    tail_keep_rate=st.sampled_from([0.0, 0.1, 1.0]),
)
@settings(max_examples=15, deadline=None)
def test_identical_seeds_reproduce_retention_and_postmortems(
    operations, seed, tail_keep_rate
):
    first = run_once(seed, operations, tail_keep_rate)
    second = run_once(seed, operations, tail_keep_rate)
    assert first[0] == second[0]  # retained-trace sets
    assert first[1] == second[1]  # retention counters
    assert first[2] == second[2]  # postmortem timelines
    assert first[3] == second[3]  # virtual clocks


@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.floats(min_value=0.0, max_value=0.01),
            st.booleans(),
        ),
        min_size=5,
        max_size=25,
    ),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=15, deadline=None)
def test_every_fault_is_retained_and_nothing_is_dropped(operations, seed):
    retained, counters, _timeline, _now = run_once(seed, operations, 0.0)
    completed, downsampled, _by_kind, evicted = counters
    faults = sum(1 for _t, _h, fail in operations if fail)
    anomalies = [entry for entry in retained if entry[1] != "tail-sample"]
    # Every injected fault's trace was kept for cause (never sampled away),
    # and retention + downsampling partition the completed traces exactly.
    assert len(anomalies) >= min(faults, 1)
    assert completed == downsampled + len(retained) + evicted
