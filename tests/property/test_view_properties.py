"""Property tests: the view fold algebra is a commutative monoid.

Exactly-once view maintenance leans on fold order not mattering: deltas
coalesce per (source silo, shard) stream, so the same inserts can reach a
shard pre-merged in different groupings depending on timing.  These
properties pin the algebraic facts that make that safe.  Values are
integer-valued floats so float associativity cannot blur the comparison —
the production parity check allows an ulp of drift; the algebra itself
should not need it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aodb.views import empty_stats, fold_stats, rank_value, stats_summary

deltas = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=5),  # count
        st.integers(min_value=-100, max_value=100),  # per-delta total
        st.integers(min_value=-100, max_value=100),  # vmin
        st.integers(min_value=-100, max_value=100),  # vmax
    ),
    min_size=1,
    max_size=30,
)


def fold_all(items):
    stats = empty_stats()
    for count, total, vmin, vmax in items:
        fold_stats(stats, count, float(total), float(vmin), float(vmax))
    return stats


@given(deltas=deltas, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200)
def test_fold_is_order_independent(deltas, seed):
    import random

    shuffled = list(deltas)
    random.Random(seed).shuffle(shuffled)
    assert fold_all(shuffled) == fold_all(deltas)


@given(deltas=deltas, split=st.integers(min_value=0, max_value=30))
def test_fold_of_premerged_cohorts_equals_direct_fold(deltas, split):
    """Coalescing (merge then fold) cannot change the answer."""
    split = min(split, len(deltas))
    left, right = deltas[:split], deltas[split:]
    merged = empty_stats()
    for part in (left, right):
        if not part:
            continue
        stats = fold_all(part)
        fold_stats(merged, int(stats[0]), stats[1], stats[2], stats[3])
    assert merged == fold_all(deltas)


@given(deltas=deltas)
def test_summary_is_consistent_with_the_raw_fold(deltas):
    stats = fold_all(deltas)
    summary = stats_summary(stats)
    assert summary["count"] == sum(d[0] for d in deltas)
    assert summary["total"] == sum(d[1] for d in deltas)
    assert summary["min"] == min(d[2] for d in deltas)
    assert summary["max"] == max(d[3] for d in deltas)
    assert summary["mean"] == summary["total"] / summary["count"]
    for field in ("mean", "max", "min", "count", "total"):
        assert rank_value(stats, field) == summary[field]


def test_empty_summary_has_no_extrema():
    assert stats_summary(empty_stats()) == {
        "count": 0,
        "total": 0.0,
        "mean": None,
        "min": None,
        "max": None,
    }
