"""Property-based tests of the tsblocks codec and tiered engine.

The codec's contract is *bit-identical* round-trips: timestamps go
through the IEEE-754 total-order bijection into exact integer
delta-of-delta arithmetic, and values through Gorilla XOR, so nothing
ever leaves bit space.  Exactness is therefore tested with
``struct.pack`` equality (NaN payloads and ``-0.0`` signs included),
not ``==``.
"""

import math
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    SealedBlock,
    TieredSeries,
    decode_floats,
    decode_uints,
    encode_floats,
    encode_uints,
    summarize,
)
from repro.storage.tsblocks import decode_values, encode_values, merge_folds

any_floats = st.floats(allow_nan=True, allow_infinity=True)


def bits_of(values):
    return [struct.pack(">d", v) for v in values]


def monotone_timestamps(t0, gaps):
    t = t0
    out = []
    for gap in gaps:
        t += gap
        out.append(t)
    return out


timestamp_streams = st.builds(
    monotone_timestamps,
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    st.lists(
        # Mostly-regular cadence with constant runs (gap 0), unit steps
        # and large irregular holes — everything a window can accept.
        st.one_of(
            st.just(0.0),
            st.just(1.0),
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                      allow_infinity=False),
        ),
        min_size=1,
        max_size=120,
    ),
)


@given(values=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                       min_size=0, max_size=150))
@settings(max_examples=50, deadline=None)
def test_uint_codec_roundtrips_exactly(values):
    assert decode_uints(encode_uints(values), len(values)) == values


@given(stamps=timestamp_streams)
@settings(max_examples=50, deadline=None)
def test_monotone_timestamps_roundtrip_bit_identically(stamps):
    decoded = decode_floats(encode_floats(stamps), len(stamps))
    assert bits_of(decoded) == bits_of(stamps)


@given(values=st.lists(any_floats, min_size=0, max_size=150))
@settings(max_examples=50, deadline=None)
def test_value_codec_roundtrips_arbitrary_floats_bit_identically(values):
    # Arbitrary floats: NaNs (payload preserved), ±inf, -0.0, constant
    # runs, denormals — the XOR codec never interprets, only stores bits.
    decoded = decode_values(encode_values(values), len(values))
    assert bits_of(decoded) == bits_of(values)


@given(value=any_floats, count=st.integers(min_value=1, max_value=400))
@settings(max_examples=25, deadline=None)
def test_constant_runs_compress_to_one_bit_per_repeat(value, count):
    encoded = encode_values([value] * count)
    assert len(encoded) <= 8 + (count + 7) // 8 + 1
    assert bits_of(decode_values(encoded, count)) == bits_of([value] * count)


@given(stamps=timestamp_streams, data=st.data())
@settings(max_examples=50, deadline=None)
def test_sealed_block_roundtrips_and_summary_matches_fold(stamps, data):
    values = data.draw(
        st.lists(any_floats, min_size=len(stamps), max_size=len(stamps))
    )
    pairs = list(zip(stamps, values))
    block = SealedBlock.seal(pairs)
    decoded = block.decode()
    assert [bits_of(p) for p in decoded] == [bits_of(p) for p in pairs]
    # Summary-vs-decoded-fold consistency: the seal-time summary is the
    # same fold the query path would compute from the decoded points.
    refold = summarize(decoded)
    assert refold.count == block.summary.count
    assert refold.t_first == block.summary.t_first
    assert refold.t_last == block.summary.t_last
    assert refold.v_min == block.summary.v_min
    assert refold.v_max == block.summary.v_max
    assert refold.v_sum == block.summary.v_sum or (
        math.isnan(refold.v_sum) and math.isnan(block.summary.v_sum)
    )


@given(stamps=timestamp_streams, data=st.data())
@settings(max_examples=30, deadline=None)
def test_tiered_series_equals_raw_window_on_any_stream(stamps, data):
    values = data.draw(
        st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
                      allow_infinity=False),
            min_size=len(stamps),
            max_size=len(stamps),
        )
    )
    pairs = list(zip(stamps, values))
    capacity = data.draw(st.integers(min_value=1, max_value=len(pairs) + 10))
    tiered = TieredSeries(capacity, block_size=8)
    raw = TieredSeries(capacity, block_size=0)
    tiered_evicted, raw_evicted = [], []

    def flatten(items, into):
        for item in items:
            if isinstance(item, SealedBlock):
                into.extend(item.decode())
            else:
                into.append(item)

    for offset in range(0, len(pairs), 5):
        batch = pairs[offset:offset + 5]
        flatten(tiered.append_many(batch), tiered_evicted)
        flatten(raw.append_many(batch), raw_evicted)

    assert tiered.all_pairs() == raw.all_pairs()
    assert tiered_evicted == raw_evicted
    assert len(tiered) == len(raw) <= capacity
    t0, t1 = pairs[0][0], pairs[-1][0]
    mid = data.draw(st.floats(min_value=t0, max_value=max(t0, t1),
                              allow_nan=False))
    assert tiered.range(mid, t1 + 1.0) == raw.range(mid, t1 + 1.0)
    assert tiered.tail(7) == raw.tail(7)


@given(stamps=timestamp_streams, data=st.data())
@settings(max_examples=30, deadline=None)
def test_aggregate_equals_fold_of_decoded_range(stamps, data):
    values = data.draw(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                      allow_infinity=False),
            min_size=len(stamps),
            max_size=len(stamps),
        )
    )
    pairs = list(zip(stamps, values))
    series = TieredSeries(capacity=len(pairs) + 1, block_size=8)
    series.append_many(pairs)
    t0, t1 = pairs[0][0], pairs[-1][0] + 1.0
    got = series.aggregate(t0, t1)
    expected = merge_folds([summarize(pairs)])
    assert got["count"] == expected["count"]
    assert got["min"] == expected["min"]
    assert got["max"] == expected["max"]
    assert math.isclose(got["sum"], expected["sum"],
                        rel_tol=1e-9, abs_tol=1e-9)
