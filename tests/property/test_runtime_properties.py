"""Property-based tests of actor-runtime invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig


def build_runtime(seed=0, silos=2, cost=0.0):
    sched = Scheduler()
    config = RuntimeConfig(
        default_method_cost=cost, activation_cost=0.0, seed=seed
    )
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.0001))
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    return sched, runtime


class Counter(Actor):
    def __init__(self, context):
        super().__init__(context)
        self.value = 0
        self.active_turns = 0
        self.overlap_detected = False

    async def add(self, amount, hold):
        # Turn-based execution: no other message may run inside this one.
        self.active_turns += 1
        if self.active_turns > 1:
            self.overlap_detected = True
        await self.context.runtime.scheduler.sleep(hold)
        self.value += amount
        self.active_turns -= 1
        return self.value

    async def read(self):
        return self.value, self.overlap_detected


@given(
    operations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),   # target actor
            st.integers(min_value=-100, max_value=100),  # amount
            st.floats(min_value=0.0, max_value=0.01),    # hold time
        ),
        min_size=1,
        max_size=40,
    ),
    seed=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=20, deadline=None)
def test_concurrent_asks_linearize_per_actor(operations, seed):
    """Any interleaving of asks yields exact sums and no turn overlap."""
    sched, runtime = build_runtime(seed=seed)
    runtime.register_actor(Counter)

    async def main():
        futures = [
            runtime.ref("Counter", f"c{target}").ask("add", amount, hold)
            for target, amount, hold in operations
        ]
        await sched.gather(futures)
        results = {}
        for target in {target for target, _, _ in operations}:
            results[target] = await runtime.ref("Counter", f"c{target}").read()
        return results

    results = sched.run_until_complete(main())
    for target, (value, overlapped) in results.items():
        expected = sum(amount for t, amount, _ in operations if t == target)
        assert value == expected
        assert not overlapped


@given(
    keys=st.lists(
        st.text(
            alphabet="abcdefghij", min_size=1, max_size=6
        ),
        min_size=1,
        max_size=30,
    ),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_virtual_actor_identity_is_stable(keys, seed):
    """The same key always reaches the same (single) activation."""
    sched, runtime = build_runtime(seed=seed)
    runtime.register_actor(Counter)

    async def main():
        for key in keys:
            await runtime.ref("Counter", key).add(1, 0.0)
        totals = {}
        for key in set(keys):
            value, _ = await runtime.ref("Counter", key).read()
            totals[key] = value
        return totals

    totals = sched.run_until_complete(main())
    for key in set(keys):
        assert totals[key] == keys.count(key)
    assert runtime.total_activations() == len(set(keys))


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_runs_are_deterministic_across_identical_seeds(seed):
    """Two runtimes with the same seed produce identical trajectories."""

    def run_once():
        sched, runtime = build_runtime(seed=seed, cost=0.001)
        runtime.register_actor(Counter)

        async def main():
            futures = [
                runtime.ref("Counter", f"c{i % 3}").ask("add", i, 0.001)
                for i in range(12)
            ]
            await sched.gather(futures)
            return sched.now, runtime.describe_cluster()["silos"]

        return sched.run_until_complete(main())

    assert run_once() == run_once()
