"""Property-based tests of kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import CpuResource, Scheduler, TokenBucket

costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(costs=costs_strategy, cores=st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_cpu_work_conservation(costs, cores):
    """Total busy time equals the sum of submitted work; the makespan is
    bounded below by both the critical path and perfect speedup."""
    sched = Scheduler()
    cpu = CpuResource(sched, cores=cores)
    finish_times = []

    async def job(cost):
        await cpu.consume(cost)
        finish_times.append(sched.now)

    async def main():
        await sched.gather([sched.spawn(job(cost)) for cost in costs])

    sched.run_until_complete(main())
    total = sum(costs)
    assert cpu.busy_seconds == sum(costs) * 1.0 / cpu.speed
    makespan = max(finish_times)
    assert makespan >= max(costs) - 1e-9
    assert makespan >= total / cores - 1e-9
    # FCFS with simultaneous arrival can never do worse than serial.
    assert makespan <= total + 1e-9


@given(costs=costs_strategy)
@settings(max_examples=20, deadline=None)
def test_single_core_serializes_in_submission_order(costs):
    sched = Scheduler()
    cpu = CpuResource(sched, cores=1)
    completion_order = []

    async def job(index, cost):
        await cpu.consume(cost)
        completion_order.append(index)

    async def main():
        await sched.gather(
            [sched.spawn(job(i, cost)) for i, cost in enumerate(costs)]
        )

    sched.run_until_complete(main())
    positive = [i for i in completion_order]
    assert positive == sorted(positive)


@given(
    rate=st.floats(min_value=0.5, max_value=100.0),
    burst=st.floats(min_value=1.0, max_value=50.0),
    amounts=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20),
)
@settings(max_examples=25, deadline=None)
def test_token_bucket_never_overdraws(rate, burst, amounts):
    """Tokens consumed over any horizon never exceed burst + rate * time."""
    sched = Scheduler()
    bucket = TokenBucket(sched, rate=rate, burst=burst)
    consumed = 0.0

    async def main():
        nonlocal consumed
        for amount in amounts:
            if amount <= burst:
                await bucket.consume(amount)
                consumed += amount

    sched.run_until_complete(main())
    assert consumed <= burst + rate * sched.now + 1e-6
    assert bucket.tokens >= -1e-9


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=25, deadline=None)
def test_sleeps_complete_in_timestamp_order(delays):
    sched = Scheduler()
    completions = []

    async def sleeper(delay):
        await sched.sleep(delay)
        completions.append((sched.now, delay))

    async def main():
        await sched.gather([sched.spawn(sleeper(d)) for d in delays])

    sched.run_until_complete(main())
    times = [t for t, _ in completions]
    assert times == sorted(times)
    for completed_at, delay in completions:
        assert completed_at == delay
    assert sched.now == max(delays)
