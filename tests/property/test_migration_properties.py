"""Property-based tests: migration is lossless under sustained traffic + chaos.

The elasticity acceptance bar (ISSUE 5): under arbitrary interleavings of
sustained ingest, live migrations, graceful drains, and network chaos, every
message is delivered exactly once, durable state round-trips byte-identical
through the persistence path, and per-message deadline/retry semantics are
unchanged.  Chaos here is ``extra_delay`` (reordering in time, nothing
dropped or duplicated) so the exactly-once assertions stay honest — loss and
duplication faults are the retry layer's test surface, not migration's.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network, NetworkFaultInjector
from repro.runtime import (
    Actor,
    ActorKey,
    AodbRuntime,
    RetryPolicy,
    RuntimeConfig,
    WritePolicy,
)


class Journal(Actor):
    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE

    async def append(self, seq):
        entries = self.state.setdefault("entries", [])
        entries.append(seq)
        self.mark_dirty()
        return len(entries)

    async def entries(self):
        return list(self.state.get("entries", []))


def build_runtime(seed=0, silos=3):
    sched = Scheduler()
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        seed=seed,
        idle_timeout=1000.0,
        collection_interval=100.0,
    )
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.0005))
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    runtime.register_actor(Journal)
    return sched, runtime


@given(
    actors=st.integers(min_value=1, max_value=4),
    messages=st.integers(min_value=5, max_value=40),
    migrations=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # which actor to move
            st.integers(min_value=0, max_value=2),  # target silo
            st.floats(min_value=0.0, max_value=0.05),  # when to move
        ),
        max_size=6,
    ),
    delay=st.floats(min_value=0.0, max_value=0.01),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=25, deadline=None)
def test_migrations_under_ingest_and_chaos_lose_nothing(
    actors, messages, migrations, delay, seed
):
    """Exactly-once delivery: every appended sequence appears exactly once,
    in order, no matter how migrations and delayed messages interleave."""
    sched, runtime = build_runtime(seed=seed)
    if delay:
        runtime.network.inject_faults(
            NetworkFaultInjector(random.Random(seed), extra_delay=delay)
        )

    async def mover(actor_index, target, at):
        await sched.sleep(at)
        key = ActorKey("Journal", f"j{actor_index % actors}")
        try:
            await runtime.migrate(key, f"silo-{target}")
        except Exception:
            pass  # unusable target / nothing live: still must lose nothing

    async def main():
        for index, (actor_index, target, at) in enumerate(migrations):
            sched.spawn(mover(actor_index, target, at), name=f"mover-{index}")
        futures = []
        for seq in range(messages):
            ref = runtime.ref("Journal", f"j{seq % actors}")
            futures.append(ref.ask("append", seq))
        await sched.gather(futures)
        await sched.sleep(0.2)  # let stragglers and movers finish
        observed = {}
        for a in range(actors):
            observed[a] = await runtime.ref("Journal", f"j{a}").entries()
        return observed

    observed = sched.run_until_complete(main())
    for a in range(actors):
        expected = [seq for seq in range(messages) if seq % actors == a]
        # Sequential per-sender asks from one client: exactly once AND in
        # submission order, even across migrations.
        assert sorted(observed[a]) == expected
    assert runtime.stats.dropped_messages == 0


@given(
    writes=st.lists(st.integers(min_value=-5, max_value=99), min_size=1, max_size=20),
    hops=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=25, deadline=None)
def test_durable_state_round_trips_byte_identical(writes, hops, seed):
    """State after N migrations equals state after none — the persistence
    path is the same one deactivation uses, so snapshots are identical."""
    sched, runtime = build_runtime(seed=seed)
    key = ActorKey("Journal", "j0")

    async def main():
        ref = runtime.ref("Journal", "j0")
        for value in writes:
            await ref.append(value)
        silos = [f"silo-{i}" for i in range(3)]
        here = runtime.directory.lookup(key)
        for hop in range(hops):
            target = silos[(silos.index(here) + 1) % len(silos)]
            assert await runtime.migrate(key, target)
            here = target
        stored = await runtime.grain_storage.get(key.storage_key())
        return stored.value, await ref.entries()

    stored, live = sched.run_until_complete(main())
    assert stored == {"entries": list(writes)}
    assert live == list(writes)
    assert runtime.stats.migrations == hops


@given(
    messages=st.integers(min_value=3, max_value=25),
    move_at=st.floats(min_value=0.0, max_value=0.02),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=25, deadline=None)
def test_deadline_retry_semantics_survive_migration(messages, move_at, seed):
    """Resilient asks racing a migration neither retry nor trip deadlines:
    the move looks exactly like an ordinary (fast) deactivation."""
    sched, runtime = build_runtime(seed=seed)
    policy = RetryPolicy(max_attempts=3, base_delay=0.05, jitter=0.0)
    key = ActorKey("Journal", "j0")

    async def mover():
        await sched.sleep(move_at)
        source = runtime.directory.lookup(key)
        if source is None:
            return
        target = "silo-1" if source != "silo-1" else "silo-2"
        await runtime.migrate(key, target)

    async def main():
        ref = runtime.ref("Journal", "j0")
        await ref.append(-1)
        sched.spawn(mover(), name="mover")
        futures = [
            ref.ask("append", seq, deadline=10.0, retry=policy)
            for seq in range(messages)
        ]
        await sched.gather(futures)
        return await ref.entries()

    entries = sched.run_until_complete(main())
    assert sorted(entries) == sorted([-1] + list(range(messages)))
    assert runtime.stats.calls_retried == 0
    assert runtime.stats.deadlines_exceeded == 0
    assert runtime.stats.errors == 0


@given(seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_elastic_trajectories_are_deterministic(seed):
    """Same seed, same migrations, same chaos => identical trajectories."""

    def run_once():
        sched, runtime = build_runtime(seed=seed)
        runtime.network.inject_faults(
            NetworkFaultInjector(random.Random(seed), extra_delay=0.002)
        )

        async def mover():
            await sched.sleep(0.01)
            for a in range(2):
                key = ActorKey("Journal", f"j{a}")
                source = runtime.directory.lookup(key)
                if source is not None:
                    target = "silo-2" if source != "silo-2" else "silo-0"
                    await runtime.migrate(key, target)

        async def main():
            sched.spawn(mover(), name="mover")
            futures = [
                runtime.ref("Journal", f"j{i % 2}").ask("append", i)
                for i in range(16)
            ]
            await sched.gather(futures)
            entries = []
            for a in range(2):
                entries.append(await runtime.ref("Journal", f"j{a}").entries())
            return sched.now, entries, runtime.stats.migrations

        return sched.run_until_complete(main())

    assert run_once() == run_once()
