"""Property-based tests of data structures (timeseries, metrics, geo, serde)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import percentile
from repro.cattle import haversine_meters
from repro.shm import AccumulatedChange, AggregateStats, DataPoint, DataWindow
from repro.storage import snapshot

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(values=st.lists(finite_floats, min_size=1, max_size=200))
@settings(max_examples=15, deadline=None)
def test_aggregate_stats_match_batch_formulas(values):
    stats = AggregateStats()
    for value in values:
        stats.observe(value)
    assert stats.count == len(values)
    assert stats.minimum == min(values)
    assert stats.maximum == max(values)
    mean = sum(values) / len(values)
    assert math.isclose(stats.mean, mean, rel_tol=1e-9, abs_tol=1e-6)
    batch_variance = sum((v - mean) ** 2 for v in values) / len(values)
    assert math.isclose(stats.variance, batch_variance, rel_tol=1e-6, abs_tol=1e-5)


@given(
    left=st.lists(finite_floats, min_size=0, max_size=100),
    right=st.lists(finite_floats, min_size=0, max_size=100),
)
@settings(max_examples=15, deadline=None)
def test_aggregate_merge_is_equivalent_to_concatenation(left, right):
    merged = AggregateStats()
    for value in left:
        merged.observe(value)
    other = AggregateStats()
    for value in right:
        other.observe(value)
    merged.merge(other)
    combined = AggregateStats()
    for value in left + right:
        combined.observe(value)
    assert merged.count == combined.count
    if combined.count:
        assert math.isclose(merged.mean, combined.mean, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(
            merged.variance, combined.variance, rel_tol=1e-6, abs_tol=1e-5
        )


def _stats_of(values):
    stats = AggregateStats()
    for value in values:
        stats.observe(value)
    return stats


@given(
    a=st.lists(finite_floats, min_size=0, max_size=60),
    b=st.lists(finite_floats, min_size=0, max_size=60),
    c=st.lists(finite_floats, min_size=0, max_size=60),
)
@settings(max_examples=25, deadline=None)
def test_aggregate_merge_is_associative(a, b, c):
    # (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c): merge mutates the receiver, so each
    # grouping gets its own fresh partial aggregates.
    left = _stats_of(a).merge(_stats_of(b)).merge(_stats_of(c))
    right = _stats_of(a).merge(_stats_of(b).merge(_stats_of(c)))
    assert left.count == right.count
    if left.count:
        assert left.minimum == right.minimum
        assert left.maximum == right.maximum
        assert math.isclose(left.mean, right.mean, rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(
            left.variance, right.variance, rel_tol=1e-6, abs_tol=1e-5
        )


@given(values=st.lists(finite_floats, min_size=1, max_size=100))
@settings(max_examples=15, deadline=None)
def test_accumulated_change_invariants(values):
    change = AccumulatedChange()
    for value in values:
        change.observe(value)
    # Total movement always dominates the net displacement.
    assert change.total >= abs(change.net) - 1e-9
    assert change.net == values[-1] - values[0]
    assert change.count == len(values)


@given(
    timestamps=st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=150
    ),
    capacity=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=15, deadline=None)
def test_window_capacity_and_order_invariants(timestamps, capacity):
    timestamps = sorted(timestamps)
    window = DataWindow(capacity=capacity)
    evicted = window.extend([DataPoint(ts, 0.0) for ts in timestamps])
    assert len(window) == min(capacity, len(timestamps))
    assert len(evicted) + len(window) == len(timestamps)
    points = window.all_points()
    assert [p.timestamp for p in points] == timestamps[-len(points):]


@given(
    timestamps=st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        min_size=1,
        max_size=100,
    ),
    bounds=st.tuples(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=1000, allow_nan=False),
    ),
)
@settings(max_examples=15, deadline=None)
def test_window_range_matches_naive_filter(timestamps, bounds):
    timestamps = sorted(timestamps)
    start, end = min(bounds), max(bounds)
    window = DataWindow(capacity=1000)
    window.extend([DataPoint(ts, ts) for ts in timestamps])
    got = [p.timestamp for p in window.range(start, end)]
    expected = [ts for ts in timestamps if start <= ts < end]
    assert got == expected


@given(values=st.lists(finite_floats, min_size=1, max_size=200), q=st.floats(0, 1))
@settings(max_examples=15, deadline=None)
def test_percentile_bounded_and_monotone(values, q):
    ordered = sorted(values)
    result = percentile(ordered, q)
    assert ordered[0] - 1e-9 <= result <= ordered[-1] + 1e-9
    if q < 1.0:
        assert percentile(ordered, q) <= percentile(ordered, min(1.0, q + 0.1)) + 1e-9


@given(
    lat1=st.floats(-89, 89), lon1=st.floats(-179, 179),
    lat2=st.floats(-89, 89), lon2=st.floats(-179, 179),
)
@settings(max_examples=15, deadline=None)
def test_haversine_metric_properties(lat1, lon1, lat2, lon2):
    forward = haversine_meters(lat1, lon1, lat2, lon2)
    backward = haversine_meters(lat2, lon2, lat1, lon1)
    assert forward >= 0
    assert math.isclose(forward, backward, rel_tol=1e-9, abs_tol=1e-6)
    assert haversine_meters(lat1, lon1, lat1, lon1) == 0.0
    # Bounded by half the Earth's circumference.
    assert forward <= math.pi * 6_371_000.0 + 1.0


nested_data = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(10**9), max_value=10**9),
        finite_floats,
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.tuples(children, children),
    ),
    max_leaves=20,
)


@given(value=nested_data)
@settings(max_examples=20, deadline=None)
def test_snapshot_equals_but_isolates(value):
    copied = snapshot(value)
    assert copied == value
    # Mutating a mutable copy never affects the original.
    if isinstance(copied, list):
        copied.append("sentinel")
        assert value == snapshot(value)
    elif isinstance(copied, dict):
        copied["__sentinel__"] = 1
        assert "__sentinel__" not in value
