"""Focused tests for the Organization actor (tenancy, roles, alerts)."""

import pytest

from repro.errors import AuthorizationError, UnknownEntityError
from repro.shm import channel_id_for, sensor_id_for


@pytest.fixture
def org(sched, platform):
    async def setup():
        await platform.provision(total_sensors=2)
        return platform.runtime.ref("Organization", "org-0")

    return sched.run_until_complete(setup())


def test_role_matrix(sched, platform, org):
    async def main():
        await org.add_user("eng", "E", role="engineer")
        await org.add_user("ana", "A", role="data_analyst")
        await org.add_user("mnt", "M", role="maintenance")
        results = {}
        for user, action in [
            ("eng", "read_data"),
            ("ana", "read_data"),
            ("mnt", "manage_structure"),
            ("admin", "manage_users"),
        ]:
            results[(user, action)] = await org.check_access(user, action)
        return results

    results = sched.run_until_complete(main())
    assert all(results.values())


def test_role_matrix_denials(sched, platform, org):
    async def main():
        await org.add_user("eng", "E", role="engineer")
        await org.add_user("ana", "A", role="data_analyst")
        denials = []
        for user, action in [
            ("eng", "manage_users"),
            ("ana", "manage_structure"),
            ("ana", "manage_users"),
        ]:
            try:
                await org.check_access(user, action)
            except AuthorizationError:
                denials.append((user, action))
        return denials

    denials = sched.run_until_complete(main())
    assert len(denials) == 3


def test_invalid_role_rejected(sched, platform, org):
    async def main():
        with pytest.raises(ValueError):
            await org.add_user("x", "X", role="overlord")

    sched.run_until_complete(main())


def test_register_sensor_requires_project(sched, platform, org):
    async def main():
        with pytest.raises(UnknownEntityError):
            await org.register_sensor("no-such-project", "s", "extension", ["c"])

    sched.run_until_complete(main())


def test_alert_rule_scoped_to_channel(sched, platform, org):
    async def main():
        sensor_id = sensor_id_for("org-0", 0)
        target = channel_id_for(sensor_id, 0)
        other = channel_id_for(sensor_id, 1)
        pushed = await org.add_alert_rule("scoped", high=1.0, channel_id=target)
        await sched.sleep(0.5)
        await platform.ingest(sensor_id, {other: [(0.0, 99.0)]})  # no alert
        await platform.ingest(sensor_id, {target: [(1.0, 99.0)]})  # alert
        await sched.sleep(0.5)
        return pushed, await platform.alerts("org-0")

    pushed, alerts = sched.run_until_complete(main())
    assert pushed == 1
    assert len(alerts) == 1
    assert alerts[0]["channel_id"].endswith("/c-0")


def test_alert_rule_scoped_to_sensor_type(sched, platform, org):
    async def main():
        pushed = await org.add_alert_rule(
            "typed", high=1.0, sensor_type="wind_speed"
        )
        return pushed

    # Provisioned sensors are extension type: a wind rule pushes nowhere.
    assert sched.run_until_complete(main()) == 0


def test_unsubscribed_user_gets_no_inbox_alerts(sched, platform, org):
    async def main():
        await org.add_user("quiet", "Q", role="engineer", subscribed_alerts=False)
        await org.add_alert_rule("r", high=1.0)
        await sched.sleep(0.5)
        sensor_id = sensor_id_for("org-0", 0)
        await platform.ingest(
            sensor_id, {channel_id_for(sensor_id, 0): [(0.0, 50.0)]}
        )
        await sched.sleep(0.5)
        return (
            await org.inbox("quiet"),
            await org.inbox("admin"),
        )

    quiet_inbox, admin_inbox = sched.run_until_complete(main())
    assert quiet_inbox == []
    assert len(admin_inbox) == 1


def test_alert_storage_is_bounded(sched, platform, org):
    from repro.shm.organization import MAX_STORED_ALERTS

    async def main():
        for i in range(MAX_STORED_ALERTS + 50):
            await org.ask(
                "record_alert",
                {
                    "rule_id": "r",
                    "channel_id": "c",
                    "value": 1.0,
                    "timestamp": float(i),
                },
            )
        alerts = await org.alerts(limit=MAX_STORED_ALERTS + 100)
        return alerts

    alerts = sched.run_until_complete(main())
    assert len(alerts) == MAX_STORED_ALERTS
    # Oldest alerts were dropped: the first retained is number 50.
    assert alerts[0]["timestamp"] == 50.0


def test_organization_state_durable_across_deactivation(sched, platform, org):
    async def main():
        await org.add_user("u", "U", role="engineer")
        await platform.runtime.deactivate("Organization", "org-0")
        summary = await org.describe()
        return summary

    summary = sched.run_until_complete(main())
    assert summary["users"] == 2  # admin + u
    assert summary["sensors"] == 2
