"""Focused tests for channel and aggregator actors (durability, edge cases)."""

import pytest

from repro.shm import aggregator_id_for, channel_id_for, sensor_id_for

from .conftest import points_for


def test_channel_window_survives_deactivation(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: points_for(0, 0.0)})
        await platform.runtime.deactivate("PhysicalSensorChannel", c0)
        # Reactivation restores the window and accumulated change.
        raw = await platform.raw_range(c0, 0.0, 10.0)
        change = await platform.accumulated_change(c0)
        return raw, change

    raw, change = sched.run_until_complete(main())
    assert len(raw) == 10
    assert change["count"] == 10


def test_virtual_channel_pending_buffer_bounded(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        # Channel 1 never delivers: pending timestamps accumulate but must
        # stay bounded (stale halves are dropped).
        for wave in range(300):
            await platform.ingest(
                sensor_id,
                {c0: [(float(wave * 10 + i), 1.0) for i in range(10)]},
            )
        await sched.sleep(1)
        vc = platform.runtime.ref("VirtualSensorChannel", f"{sensor_id}/vc")
        return await vc.pending_count()

    pending = sched.run_until_complete(main())
    assert pending <= 1024


def test_virtual_channel_out_of_order_arrival_still_joins(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0, c1 = channel_id_for(sensor_id, 0), channel_id_for(sensor_id, 1)
        # c1's batch arrives first, then c0's: join must still happen.
        await platform.ingest(sensor_id, {c1: [(0.0, 10.0), (0.1, 20.0)]})
        await platform.ingest(sensor_id, {c0: [(0.0, 1.0), (0.1, 2.0)]})
        await sched.sleep(1)
        return await platform.raw_range(f"{sensor_id}/vc", 0.0, 1.0, virtual=True)

    derived = sched.run_until_complete(main())
    assert derived == [(0.0, 11.0), (0.1, 22.0)]


def test_aggregator_bucket_rollover_forwards_downstream(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        # Cross three hour boundaries.
        for hour in range(3):
            await platform.ingest(
                sensor_id, {c0: [(hour * 3600.0 + 10.0, float(hour))]}
            )
        await sched.sleep(1)
        day = platform.runtime.ref("Aggregator", aggregator_id_for(c0, "day"))
        return await day.describe(), await day.series(0.0, 86400.0)

    description, series = sched.run_until_complete(main())
    # Two closed hour buckets were forwarded (the third is still open).
    assert len(series) == 1
    assert series[0][1]["count"] == 2


def test_aggregator_flush_forces_open_bucket(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: [(5.0, 3.0)]})
        await sched.sleep(1)
        hour = platform.runtime.ref("Aggregator", aggregator_id_for(c0, "hour"))
        flushed = await hour.flush()
        await sched.sleep(1)
        day_series = await platform.aggregates(c0, "day", 0.0, 86400.0)
        return flushed, day_series

    flushed, day_series = sched.run_until_complete(main())
    assert flushed is True
    assert day_series[0][1]["count"] == 1


def test_aggregator_flush_then_close_does_not_double_forward(sched, platform):
    """Regression: a mid-bucket flush used to re-send the whole bucket when
    it later closed (and every repeated flush re-sent it again), so the
    day level double-counted everything forwarded early."""

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        hour = platform.runtime.ref("Aggregator", aggregator_id_for(c0, "hour"))
        # Four readings land in hour bucket 0, then a mid-bucket flush...
        await platform.ingest(
            sensor_id, {c0: [(10.0 + i, 1.0) for i in range(4)]}
        )
        await sched.sleep(1)
        await hour.flush()
        # ...three more readings in the *same* bucket, then the bucket
        # closes when a reading lands in hour 1.
        await platform.ingest(
            sensor_id, {c0: [(100.0 + i, 2.0) for i in range(3)]}
        )
        await platform.ingest(sensor_id, {c0: [(3605.0, 9.0)]})
        await sched.sleep(1)
        # Repeated flushes: the first forwards the open hour-1 point, the
        # second has nothing left to send.
        first = await hour.flush()
        second = await hour.flush()
        await sched.sleep(1)
        hour_series = await platform.aggregates(c0, "hour", 0.0, 86400.0)
        day_series = await platform.aggregates(c0, "day", 0.0, 86400.0)
        return first, second, hour_series, day_series

    first, second, hour_series, day_series = sched.run_until_complete(main())
    assert first is True
    assert second is False
    hour_count = sum(entry["count"] for _bucket, entry in hour_series)
    day_count = sum(entry["count"] for _bucket, entry in day_series)
    assert hour_count == 8
    # Day-level totals match the raw counts exactly across the flush:
    # 4 flushed + 3 forwarded at close + 1 flushed from the next hour.
    assert day_count == 8
    # And the day mean is the true mean of all eight readings.
    day_mean = day_series[0][1]["mean"]
    assert day_mean == pytest.approx((4 * 1.0 + 3 * 2.0 + 9.0) / 8)


def test_aggregator_state_survives_deactivation(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: points_for(0, 0.0)})
        await sched.sleep(1)
        aggregator_id = aggregator_id_for(c0, "hour")
        await platform.runtime.deactivate("Aggregator", aggregator_id)
        series = await platform.aggregates(c0, "hour", 0.0, 3600.0)
        return series

    series = sched.run_until_complete(main())
    assert series[0][1]["count"] == 10


def test_aggregator_max_buckets_bounds_retention(sched, platform):
    async def main():
        agg = platform.runtime.ref("Aggregator", "custom/agg")
        await agg.configure("c", level="hour", max_buckets=2)
        # Readings across five hours; only the newest two buckets survive.
        await agg.ingest([(hour * 3600.0 + 1.0, 1.0) for hour in range(5)])
        series = await agg.series(0.0, 10 * 3600.0)
        # Bucket cap survives deactivation (it rides the state document).
        await platform.runtime.deactivate("Aggregator", "custom/agg")
        await agg.ingest([(6 * 3600.0 + 1.0, 1.0)])
        after = await agg.series(0.0, 10 * 3600.0)
        return series, after

    series, after = sched.run_until_complete(main())
    assert [bucket for bucket, _ in series] == [3, 4]
    assert [bucket for bucket, _ in after] == [4, 6]


def test_aggregator_configure_validation(sched, platform):
    async def main():
        agg = platform.runtime.ref("Aggregator", "custom/agg")
        with pytest.raises(ValueError):
            await agg.configure("c", level="fortnight")
        # But an explicit bucket size makes any level label fine.
        return await agg.configure("c", level="fortnight", bucket_seconds=1209600.0)

    result = sched.run_until_complete(main())
    assert result["level"] == "fortnight"


def test_channel_depth_and_recent(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: points_for(0, 0.0)})
        channel = platform.runtime.ref("PhysicalSensorChannel", c0)
        return await channel.depth(), await channel.recent(3)

    depth, recent = sched.run_until_complete(main())
    assert depth == 10
    assert len(recent) == 3
    assert recent[-1][0] == pytest.approx(0.9)
