"""Unit tests for windows, accumulated change and aggregates."""

import math

import pytest

from repro.shm import (
    AccumulatedChange,
    AggregateStats,
    BucketedAggregates,
    DataPoint,
    DataWindow,
)


# -- DataWindow ---------------------------------------------------------------


def test_window_appends_in_order():
    window = DataWindow(capacity=10)
    window.append(DataPoint(1.0, 5.0))
    window.append(DataPoint(2.0, 6.0))
    assert len(window) == 2
    assert window.latest().value == 6.0


def test_window_rejects_out_of_order():
    window = DataWindow()
    window.append(DataPoint(2.0, 1.0))
    with pytest.raises(ValueError):
        window.append(DataPoint(1.0, 1.0))


def test_window_allows_equal_timestamps():
    window = DataWindow()
    window.append(DataPoint(1.0, 1.0))
    window.append(DataPoint(1.0, 2.0))
    assert len(window) == 2


def test_window_evicts_oldest_when_full():
    window = DataWindow(capacity=3)
    evicted = window.extend([DataPoint(float(i), i) for i in range(5)])
    assert [p.timestamp for p in evicted] == [0.0, 1.0]
    assert len(window) == 3
    assert window.all_points()[0].timestamp == 2.0
    assert window.total_appended == 5


def test_window_range_query_half_open():
    window = DataWindow()
    window.extend([DataPoint(float(i), i * 10) for i in range(10)])
    points = window.range(2.0, 5.0)
    assert [p.timestamp for p in points] == [2.0, 3.0, 4.0]


def test_window_tail():
    window = DataWindow()
    window.extend([DataPoint(float(i), i) for i in range(5)])
    assert [p.value for p in window.tail(2)] == [3, 4]
    assert window.tail(0) == []
    assert len(window.tail(100)) == 5


def test_window_latest_empty():
    assert DataWindow().latest() is None


def test_window_range_correct_across_heavy_eviction():
    """Range queries stay correct while the head offset advances and the
    lazy compaction fires (regression for the O(n) rebuild-per-query fix)."""
    window = DataWindow(capacity=8)
    for i in range(100):
        window.append(DataPoint(float(i), i * 1.0))
        lo = max(0, i - 7)  # oldest surviving timestamp
        got = [p.timestamp for p in window.range(float(lo), float(i + 1))]
        assert got == [float(t) for t in range(lo, i + 1)]
    # Sub-ranges, boundaries, and misses after eviction.
    assert [p.timestamp for p in window.range(95.0, 98.0)] == [95.0, 96.0, 97.0]
    assert window.range(0.0, 92.0) == []
    assert [p.value for p in window.tail(3)] == [97.0, 98.0, 99.0]
    assert len(window.all_points()) == 8
    assert window.latest().timestamp == 99.0


def test_window_range_is_logarithmic_not_linear():
    """The micro-bench data point: doubling the window size must not double
    the cost of a small range query.  Measured in list touches via a tiny
    result: the returned slice is the only O(k) part."""
    import timeit

    def cost(capacity):
        window = DataWindow(capacity=capacity)
        for i in range(capacity):
            window.append(DataPoint(float(i), 0.0))
        # Small fixed-size answer from a large window.
        return min(
            timeit.repeat(
                lambda: window.range(10.0, 20.0), number=200, repeat=5
            )
        )

    small, large = cost(1_000), cost(16_000)
    # O(n) behaviour would make `large` ~16x `small`; binary search keeps
    # the ratio near 1.  Allow generous slack for timer noise.
    assert large < small * 4


def test_window_capacity_validation():
    with pytest.raises(ValueError):
        DataWindow(capacity=0)


# -- AccumulatedChange ---------------------------------------------------------


def test_accumulated_change_net_and_total():
    change = AccumulatedChange()
    for value in [0.0, 3.0, 1.0, 4.0]:
        change.observe(value)
    assert change.net == pytest.approx(4.0)
    assert change.total == pytest.approx(3 + 2 + 3)
    assert change.count == 4


def test_accumulated_change_oscillation():
    change = AccumulatedChange()
    for value in [0.0, 1.0, 0.0, 1.0, 0.0]:
        change.observe(value)
    assert change.net == pytest.approx(0.0)
    assert change.total == pytest.approx(4.0)


def test_accumulated_change_empty():
    change = AccumulatedChange()
    assert change.net == 0.0
    assert change.total == 0.0
    snapshot = change.snapshot()
    assert snapshot["count"] == 0
    assert snapshot["first"] is None


# -- AggregateStats -------------------------------------------------------------


def test_aggregate_stats_basic_moments():
    stats = AggregateStats()
    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for value in values:
        stats.observe(value)
    assert stats.count == 8
    assert stats.mean == pytest.approx(5.0)
    assert stats.stddev == pytest.approx(2.0)
    assert stats.minimum == 2.0
    assert stats.maximum == 9.0


def test_aggregate_stats_variance_small_counts():
    stats = AggregateStats()
    assert stats.variance == 0.0
    stats.observe(10.0)
    assert stats.variance == 0.0


def test_aggregate_merge_equals_combined_stream():
    left, right, combined = AggregateStats(), AggregateStats(), AggregateStats()
    left_values = [1.0, 2.0, 3.0]
    right_values = [10.0, 20.0]
    for value in left_values:
        left.observe(value)
        combined.observe(value)
    for value in right_values:
        right.observe(value)
        combined.observe(value)
    left.merge(right)
    assert left.count == combined.count
    assert left.mean == pytest.approx(combined.mean)
    assert left.variance == pytest.approx(combined.variance)
    assert left.minimum == combined.minimum
    assert left.maximum == combined.maximum


def test_aggregate_merge_with_empty():
    stats = AggregateStats()
    stats.observe(5.0)
    stats.merge(AggregateStats())
    assert stats.count == 1
    empty = AggregateStats()
    empty.merge(stats)
    assert empty.count == 1
    assert empty.mean == 5.0


def test_aggregate_snapshot_empty():
    snapshot = AggregateStats().snapshot()
    expected = {"count": 0, "min": None, "max": None, "mean": None, "stddev": None}
    assert snapshot == expected


# -- BucketedAggregates ------------------------------------------------------------


def test_buckets_partition_by_time():
    buckets = BucketedAggregates(bucket_seconds=3600)
    buckets.observe(DataPoint(10.0, 1.0))
    buckets.observe(DataPoint(3599.0, 3.0))
    buckets.observe(DataPoint(3600.0, 5.0))
    assert buckets.buckets() == [0, 1]
    assert buckets.stats_for(0).count == 2
    assert buckets.stats_for(1).count == 1


def test_bucket_series_range():
    buckets = BucketedAggregates(bucket_seconds=60)
    for ts in [0, 30, 60, 120, 300]:
        buckets.observe(DataPoint(float(ts), 1.0))
    series = buckets.series(0, 180)
    assert [bucket for bucket, _ in series] == [0, 1, 2]


def test_bucket_series_empty_range():
    buckets = BucketedAggregates(bucket_seconds=60)
    buckets.observe(DataPoint(0.0, 1.0))
    assert buckets.series(100, 100) == []


def test_bucket_merge_rollup():
    hour = BucketedAggregates(bucket_seconds=3600)
    day = BucketedAggregates(bucket_seconds=86400)
    for ts in range(0, 7200, 600):
        hour.observe(DataPoint(float(ts), float(ts)))
    for bucket in hour.buckets():
        day.merge_bucket(
            day.bucket_of(bucket * 3600), hour.stats_for(bucket)
        )
    assert day.buckets() == [0]
    assert day.stats_for(0).count == 12


def test_bucket_validation():
    with pytest.raises(ValueError):
        BucketedAggregates(bucket_seconds=0)
    with pytest.raises(ValueError):
        BucketedAggregates(bucket_seconds=60, max_buckets=0)


def test_max_buckets_evicts_oldest():
    buckets = BucketedAggregates(bucket_seconds=60, max_buckets=3)
    for ts in [0, 60, 120, 180, 240]:
        buckets.observe(DataPoint(float(ts), 1.0))
    assert buckets.buckets() == [2, 3, 4]
    assert buckets.evicted_buckets == 2
    assert buckets.stats_for(0) is None
    assert buckets.series(0, 300) == buckets.series(120, 300)


def test_max_buckets_none_retains_everything():
    buckets = BucketedAggregates(bucket_seconds=60)
    for ts in range(0, 6000, 60):
        buckets.observe(DataPoint(float(ts), 1.0))
    assert len(buckets.buckets()) == 100
    assert buckets.evicted_buckets == 0


def test_point_older_than_horizon_is_dropped():
    buckets = BucketedAggregates(bucket_seconds=60, max_buckets=2)
    buckets.observe(DataPoint(300.0, 1.0))
    buckets.observe(DataPoint(360.0, 1.0))
    # Bucket 0 is far behind the retention horizon: it self-evicts.
    buckets.observe(DataPoint(0.0, 1.0))
    assert buckets.buckets() == [5, 6]
    assert buckets.evicted_buckets == 1


def test_max_buckets_applies_to_merged_rollups():
    day = BucketedAggregates(bucket_seconds=86400, max_buckets=2)
    hour_stats = AggregateStats()
    hour_stats.observe(5.0)
    for day_index in range(4):
        day.merge_bucket(day_index, hour_stats)
    assert day.buckets() == [2, 3]
    assert day.evicted_buckets == 2


def test_series_indexes_bucket_range_directly():
    """Regression: series() used to scan every populated bucket; it now
    bisects the sorted index, so a narrow range returns exactly the
    overlapping buckets even amid thousands of others."""
    buckets = BucketedAggregates(bucket_seconds=60)
    for ts in range(0, 60 * 5000, 60):
        buckets.observe(DataPoint(float(ts), 1.0))
    series = buckets.series(60.0 * 2000, 60.0 * 2003)
    assert [bucket for bucket, _ in series] == [2000, 2001, 2002]
    # Range edges: end is exclusive, but a partial last bucket counts.
    series = buckets.series(60.0 * 10 + 30.0, 60.0 * 12 + 1.0)
    assert [bucket for bucket, _ in series] == [10, 11, 12]


def test_pop_bucket_keeps_order_index_consistent():
    buckets = BucketedAggregates(bucket_seconds=60, max_buckets=4)
    for ts in [0, 60, 120]:
        buckets.observe(DataPoint(float(ts), 1.0))
    assert buckets.pop_bucket(1).count == 1
    assert buckets.pop_bucket(1) is None
    assert buckets.buckets() == [0, 2]
    # Eviction after a pop still removes the true oldest.
    for ts in [180, 240, 300]:
        buckets.observe(DataPoint(float(ts), 1.0))
    assert buckets.buckets() == [2, 3, 4, 5]
