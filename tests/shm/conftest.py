"""Shared fixtures for SHM platform tests."""

import pytest

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.shm import ShmPlatform


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def platform(sched):
    """A one-silo SHM platform with zero costs, aggregation on."""
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, network=network)
    runtime.add_silo("silo-1", cores=4)
    db = AodbDatabase(runtime)
    return ShmPlatform(db)


def points_for(channel_index, start, count=10, dt=0.1, base=0.0):
    """Synthesize `count` readings starting at `start`."""
    return [
        (start + i * dt, base + channel_index + i * 0.01) for i in range(count)
    ]
