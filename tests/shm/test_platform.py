"""Integration tests for the SHM platform end to end."""

import pytest

from repro.errors import AuthorizationError, UnknownEntityError
from repro.shm import SensorType, channel_id_for, sensor_id_for

from .conftest import points_for


def test_provision_matches_paper_structure(sched, platform):
    """100 sensors => 1 org, 1 user, 1 project, 210 channels (§6.1)."""

    async def main():
        return await platform.provision(total_sensors=100)

    report = sched.run_until_complete(main())
    assert report.organizations == 1
    assert report.users == 1
    assert report.projects == 1
    assert report.sensors == 100
    assert report.physical_channels == 200
    assert report.virtual_channels == 10
    assert report.total_channels == 210


def test_provision_multiple_orgs(sched, platform):
    async def main():
        return await platform.provision(total_sensors=250, sensors_per_org=100)

    report = sched.run_until_complete(main())
    assert report.organizations == 3
    assert report.org_ids == ["org-0", "org-1", "org-2"]
    assert report.sensors == 250


def test_ingest_and_raw_range(sched, platform):
    async def main():
        await platform.provision(total_sensors=2, sensors_per_org=100)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        c1 = channel_id_for(sensor_id, 1)
        await platform.ingest(
            sensor_id,
            {c0: points_for(0, start=0.0), c1: points_for(1, start=0.0)},
        )
        await platform.ingest(
            sensor_id,
            {c0: points_for(0, start=1.0), c1: points_for(1, start=1.0)},
        )
        full = await platform.raw_range(c0, 0.0, 10.0)
        partial = await platform.raw_range(c0, 1.0, 1.35)
        return full, partial

    full, partial = sched.run_until_complete(main())
    assert len(full) == 20
    assert len(partial) == 4
    assert partial[0][0] == pytest.approx(1.0)


def test_ingest_unknown_channel_rejected(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        with pytest.raises(UnknownEntityError):
            await platform.ingest(sensor_id, {"bogus-channel": points_for(0, 0.0)})

    sched.run_until_complete(main())


def test_live_data_returns_every_channel(sched, platform):
    async def main():
        await platform.provision(total_sensors=10)
        for i in range(10):
            sensor_id = sensor_id_for("org-0", i)
            await platform.ingest(
                sensor_id,
                {
                    channel_id_for(sensor_id, 0): points_for(0, 0.0),
                    channel_id_for(sensor_id, 1): points_for(1, 0.0),
                },
            )
        return await platform.live_data("org-0")

    live = sched.run_until_complete(main())
    # 10 sensors * 2 channels + 1 virtual channel (sensor 0).
    assert len(live) == 21
    sensor0 = sensor_id_for("org-0", 0)
    c0_latest = live[channel_id_for(sensor0, 0)]
    assert c0_latest is not None
    timestamp, value = c0_latest
    assert timestamp == pytest.approx(0.9)


def test_virtual_channel_derives_sum(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0, c1 = channel_id_for(sensor_id, 0), channel_id_for(sensor_id, 1)
        p0 = [(0.1 * i, 1.0) for i in range(10)]
        p1 = [(0.1 * i, 2.0) for i in range(10)]
        await platform.ingest(sensor_id, {c0: p0, c1: p1})
        await sched.sleep(1)  # let one-way forwards drain
        return await platform.raw_range(f"{sensor_id}/vc", 0.0, 2.0, virtual=True)

    derived = sched.run_until_complete(main())
    assert len(derived) == 10
    assert all(value == pytest.approx(3.0) for _, value in derived)


def test_virtual_channel_waits_for_all_inputs(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0, c1 = channel_id_for(sensor_id, 0), channel_id_for(sensor_id, 1)
        # Only channel 0 delivers; the virtual channel must stay empty.
        await platform.ingest(sensor_id, {c0: [(0.0, 1.0)]})
        await sched.sleep(1)
        empty = await platform.raw_range(f"{sensor_id}/vc", 0.0, 2.0, virtual=True)
        # Now channel 1 catches up for the same timestamp.
        await platform.ingest(sensor_id, {c1: [(0.0, 5.0)]})
        await sched.sleep(1)
        filled = await platform.raw_range(f"{sensor_id}/vc", 0.0, 2.0, virtual=True)
        return empty, filled

    empty, filled = sched.run_until_complete(main())
    assert empty == []
    assert filled == [(0.0, 6.0)]


def test_accumulated_change_service(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(
            sensor_id, {c0: [(0.0, 10.0), (0.1, 12.0), (0.2, 11.0)]}
        )
        return await platform.accumulated_change(c0)

    change = sched.run_until_complete(main())
    assert change["net"] == pytest.approx(1.0)
    assert change["total"] == pytest.approx(3.0)
    assert change["count"] == 3


def test_alerts_fire_and_reach_inbox(sched, platform):
    rule = {
        "rule_id": "too-high",
        "high": 100.0,
        "low": None,
        "channel_id": None,
        "sensor_type": None,
        "cooldown_seconds": 60.0,
        "message": "reading exceeded 100",
    }

    async def main():
        await platform.provision(total_sensors=1, alert_rules=[rule])
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        c1 = channel_id_for(sensor_id, 1)
        await platform.ingest(
            sensor_id,
            {c0: [(0.0, 50.0), (0.1, 150.0)], c1: [(0.0, 10.0), (0.1, 20.0)]},
        )
        await sched.sleep(1)  # alert is a one-way tell
        alerts = await platform.alerts("org-0")
        inbox = await platform.runtime.ref("Organization", "org-0").inbox("admin")
        return alerts, inbox

    alerts, inbox = sched.run_until_complete(main())
    assert len(alerts) == 1
    assert alerts[0]["rule_id"] == "too-high"
    assert alerts[0]["value"] == 150.0
    assert len(inbox) == 1


def test_alert_cooldown_suppresses_repeats(sched, platform):
    rule = {
        "rule_id": "r", "high": 1.0, "low": None, "channel_id": None,
        "sensor_type": None, "cooldown_seconds": 60.0, "message": "",
    }

    async def main():
        await platform.provision(total_sensors=1, alert_rules=[rule])
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        # Violations at t=0 and t=10 (inside cooldown), then t=100 (outside).
        await platform.ingest(sensor_id, {c0: [(0.0, 5.0)]})
        await platform.ingest(sensor_id, {c0: [(10.0, 5.0)]})
        await platform.ingest(sensor_id, {c0: [(100.0, 5.0)]})
        await sched.sleep(1)
        return await platform.alerts("org-0")

    alerts = sched.run_until_complete(main())
    assert [a["timestamp"] for a in alerts] == [0.0, 100.0]


def test_alert_rule_added_after_provisioning(sched, platform):
    async def main():
        await platform.provision(total_sensors=2)
        org = platform.runtime.ref("Organization", "org-0")
        pushed = await org.add_alert_rule("late-rule", high=10.0)
        sensor_id = sensor_id_for("org-0", 1)
        c0 = channel_id_for(sensor_id, 0)
        await sched.sleep(0.5)  # rule pushes are one-way
        await platform.ingest(sensor_id, {c0: [(0.0, 99.0)]})
        await sched.sleep(0.5)
        return pushed, await platform.alerts("org-0")

    pushed, alerts = sched.run_until_complete(main())
    assert pushed == 4  # 2 sensors x 2 physical channels
    assert len(alerts) == 1
    assert alerts[0]["rule_id"] == "late-rule"


def test_aggregates_hour_and_day(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        # Two hours of data, one point per 10 minutes.
        for ts in range(0, 7200, 600):
            await platform.ingest(sensor_id, {c0: [(float(ts), float(ts % 3600))]})
        await sched.sleep(1)
        hours = await platform.aggregates(c0, "hour", 0.0, 7200.0)
        # Close the open hour bucket so it rolls up into the day.
        from repro.shm import aggregator_id_for

        await platform.runtime.ref(
            "Aggregator", aggregator_id_for(c0, "hour")
        ).flush()
        await sched.sleep(1)
        days = await platform.aggregates(c0, "day", 0.0, 86400.0)
        return hours, days

    hours, days = sched.run_until_complete(main())
    assert len(hours) == 2
    assert hours[0][1]["count"] == 6
    assert len(days) == 1
    assert days[0][1]["count"] == 12


def test_access_control_enforced(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        org = platform.runtime.ref("Organization", "org-0")
        await org.add_user("analyst", "Ana", role="data_analyst")
        # Analysts may read...
        live = await platform.live_data("org-0", user_id="analyst")
        # ...but not manage users.
        with pytest.raises(AuthorizationError):
            await org.add_user("x", "X", role="admin", acting_user="analyst")
        # Unknown users may do nothing.
        with pytest.raises(AuthorizationError):
            await platform.live_data("org-0", user_id="stranger")
        return live

    live = sched.run_until_complete(main())
    assert isinstance(live, dict)


def test_window_eviction_archives_points(sched, platform):
    platform.window_capacity = 15

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: points_for(0, 0.0)})
        await platform.ingest(sensor_id, {c0: points_for(0, 1.0)})
        return platform.archive.read_range(c0, 0.0, 100.0)

    archived = sched.run_until_complete(main())
    assert len(archived) == 5  # 20 ingested - 15 window capacity


def test_multi_tenant_isolation(sched, platform):
    async def main():
        await platform.provision(total_sensors=200, sensors_per_org=100)
        s0 = sensor_id_for("org-0", 0)
        await platform.ingest(s0, {channel_id_for(s0, 0): [(0.0, 1.0)]})
        live_org1 = await platform.live_data("org-1")
        return live_org1

    live_org1 = sched.run_until_complete(main())
    # org-1 sees only its own channels, all without data.
    assert len(live_org1) == 210
    assert all(value is None for value in live_org1.values())


def test_sensor_relocation(sched, platform):
    async def main():
        await platform.provision(total_sensors=1)
        sensor = platform.runtime.ref("Sensor", sensor_id_for("org-0", 0))
        await sensor.relocate((55.34, 11.03))
        return await sensor.describe()

    description = sched.run_until_complete(main())
    assert description["position"] == (55.34, 11.03)


def test_organization_summary(sched, platform):
    async def main():
        await platform.provision(total_sensors=20)
        return await platform.organization_summary("org-0")

    summary = sched.run_until_complete(main())
    assert summary["sensors"] == 20
    assert summary["channels"] == 42  # 40 physical + 2 virtual
    assert summary["users"] == 1
    assert summary["projects"] == 1
