"""Ingest dedup under message duplication: exactly-once storage counts."""

import random

import pytest

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network, NetworkFaultInjector
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.shm import ShmPlatform


@pytest.fixture
def sched():
    return Scheduler()


def build_platform(sched, dedup_ingest):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.001))
    runtime = AodbRuntime(sched, config=config, network=network)
    runtime.add_silo("silo-1", cores=4)
    db = AodbDatabase(runtime)
    return ShmPlatform(db, dedup_ingest=dedup_ingest)


def drive(sched, platform, waves=5, points_per_wave=10):
    """Provision one sensor and ingest `waves` batches; return the window."""

    async def main():
        await platform.create_organization("org-1", "Org One")
        await platform.runtime.ref("Organization", "org-1").add_project(
            "proj-1", "Project One"
        )
        summary = await platform.add_sensor(
            "org-1", "proj-1", "sensor-1", physical_channels=1
        )
        channel_id = summary["channels"][0]
        # Arm duplication only now: provisioning asks are idempotent but
        # noisy; the claim under test is about the insert path.
        platform.runtime.network.inject_faults(
            NetworkFaultInjector(random.Random(0), duplication_rate=1.0)
        )
        for wave in range(waves):
            points = [
                (wave * 1.0 + i * 0.01, float(wave * points_per_wave + i))
                for i in range(points_per_wave)
            ]
            await platform.ingest("sensor-1", {channel_id: points})
        await sched.sleep(1.0)  # let duplicated tells land
        window = await platform.raw_range(channel_id, 0.0, 1e9)
        return window

    return sched.run_until_complete(main())


def test_dedup_ingest_keeps_exact_counts_under_duplication(sched):
    platform = build_platform(sched, dedup_ingest=True)
    window = drive(sched, platform)
    timestamps = [t for t, _ in window]
    # Every duplicated delivery was filtered: exactly one copy per reading.
    assert len(timestamps) == 50
    assert len(set(timestamps)) == 50
    assert timestamps == sorted(timestamps)
    assert platform.runtime.network.stats.duplicated_messages > 0


def test_without_dedup_duplication_inflates_the_window(sched):
    # The contrast case proving the test above detects something real: the
    # same chaos with dedup off stores duplicate readings.  Single-point
    # waves make the duplicate land cleanly (an equal timestamp passes the
    # window's out-of-order guard), so the duplicate is *stored*.
    platform = build_platform(sched, dedup_ingest=False)
    window = drive(sched, platform, waves=5, points_per_wave=1)
    timestamps = [t for t, _ in window]
    assert len(timestamps) > len(set(timestamps))


def test_dedup_ingest_keeps_exact_counts_for_single_point_waves(sched):
    # Same duplicate-prone shape as above, dedup on: exactly one copy each.
    platform = build_platform(sched, dedup_ingest=True)
    window = drive(sched, platform, waves=5, points_per_wave=1)
    timestamps = [t for t, _ in window]
    assert len(timestamps) == 5
    assert len(set(timestamps)) == 5
