"""Unit tests for virtual-channel equations."""

import pytest

from repro.shm import (
    EquationError,
    ExpressionEquation,
    MeanEquation,
    SumEquation,
    WeightedEquation,
    equation_from_description,
)


def test_sum_equation():
    eq = SumEquation()
    assert eq.evaluate({"a": 1.0, "b": 2.0}) == 3.0


def test_mean_equation():
    eq = MeanEquation()
    assert eq.evaluate({"a": 1.0, "b": 3.0}) == 2.0
    with pytest.raises(EquationError):
        eq.evaluate({})


def test_weighted_equation():
    eq = WeightedEquation((("a", 2.0), ("b", -1.0)))
    assert eq.evaluate({"a": 3.0, "b": 4.0}) == 2.0


def test_weighted_missing_input():
    eq = WeightedEquation((("a", 1.0),))
    with pytest.raises(EquationError):
        eq.evaluate({"b": 1.0})


def test_expression_equation_arithmetic():
    eq = ExpressionEquation("2 * x + y / 4", (("x", "ch-a"), ("y", "ch-b")))
    assert eq.evaluate({"ch-a": 3.0, "ch-b": 8.0}) == 8.0


def test_expression_equation_functions():
    eq = ExpressionEquation("hypot(ax, ay)", (("ax", "c0"), ("ay", "c1")))
    assert eq.evaluate({"c0": 3.0, "c1": 4.0}) == 5.0


def test_expression_equation_unary():
    eq = ExpressionEquation("-x + abs(x)", (("x", "c"),))
    assert eq.evaluate({"c": -2.0}) == 4.0


def test_expression_rejects_undeclared_variable():
    with pytest.raises(EquationError, match="undeclared"):
        ExpressionEquation("x + y", (("x", "c0"),))


def test_expression_rejects_dangerous_syntax():
    for bad in [
        "__import__('os')",
        "x.denominator",
        "[1,2][0]",
        "lambda: 1",
        "x if x else 0",
    ]:
        with pytest.raises(EquationError):
            ExpressionEquation(bad, (("x", "c"),))


def test_expression_rejects_syntax_error():
    with pytest.raises(EquationError):
        ExpressionEquation("x +", (("x", "c"),))


def test_expression_missing_input_at_eval():
    eq = ExpressionEquation("x", (("x", "c0"),))
    with pytest.raises(EquationError):
        eq.evaluate({"other": 1.0})


def test_round_trip_descriptions():
    equations = [
        SumEquation(),
        MeanEquation(),
        WeightedEquation((("a", 1.5),)),
        ExpressionEquation("x * 2", (("x", "c0"),)),
    ]
    for eq in equations:
        rebuilt = equation_from_description(eq.describe())
        assert type(rebuilt) is type(eq)
    assert equation_from_description({"kind": "sum"}).evaluate({"a": 1}) == 1


def test_unknown_description_kind():
    with pytest.raises(EquationError):
        equation_from_description({"kind": "mystery"})
