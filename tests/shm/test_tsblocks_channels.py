"""Channel actors over the tiered (compressed-block) storage engine."""

import pytest

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.runtime.key import ActorKey
from repro.shm import ShmPlatform, channel_id_for, sensor_id_for
from repro.storage import ArchiveLog, InMemoryKVStore


@pytest.fixture
def sched():
    return Scheduler()


def build_platform(sched, window_capacity=64, block_size=16, **kwargs):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(
        sched, config=config, network=network,
        grain_storage=InMemoryKVStore(),
    )
    runtime.add_silo("silo-1", cores=4)
    db = AodbDatabase(runtime)
    return ShmPlatform(
        db,
        window_capacity=window_capacity,
        block_size=block_size,
        **kwargs,
    )


def ramp(count, t0=0.0, dt=1.0):
    return [(t0 + i * dt, 20.0 + (i % 5) * 0.25) for i in range(count)]


def test_sealed_blocks_survive_deactivation(sched):
    platform = build_platform(sched)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        points = ramp(50)
        await platform.ingest(sensor_id, {c0: points})
        channel = platform.runtime.ref("PhysicalSensorChannel", c0)
        before = await channel.storage_stats()
        await platform.runtime.deactivate("PhysicalSensorChannel", c0)
        # Reactivation re-opens the compressed blocks from the document.
        after = await channel.storage_stats()
        raw = await platform.raw_range(c0, 0.0, 100.0)
        return points, before, after, raw

    points, before, after, raw = sched.run_until_complete(main())
    assert before["blocks"] == 3  # 50 points / block_size 16
    assert after["blocks"] == before["blocks"]
    assert after["block_bytes"] == before["block_bytes"]
    assert raw == points


def test_legacy_raw_window_state_still_loads(sched):
    platform = build_platform(sched)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: ramp(10)})
        await platform.runtime.deactivate("PhysicalSensorChannel", c0)
        # Rewrite the persisted document in the pre-tsblocks shape: a raw
        # pair list under "window", no "tsdoc".
        key = ActorKey("PhysicalSensorChannel", c0).storage_key()
        item = await platform.runtime.grain_storage.get(key)
        legacy = dict(item.value)
        legacy.pop("tsdoc")
        legacy["window"] = [list(p) for p in ramp(10)]
        await platform.runtime.grain_storage.put(key, legacy)
        raw = await platform.raw_range(c0, 0.0, 100.0)
        # And the next snapshot upgrades the document to tsdoc form.
        await platform.runtime.deactivate("PhysicalSensorChannel", c0)
        item = await platform.runtime.grain_storage.get(key)
        return raw, item.value

    raw, stored = sched.run_until_complete(main())
    assert raw == ramp(10)
    assert "tsdoc" in stored and "window" not in stored


def test_aggregate_range_matches_raw_fold(sched):
    platform = build_platform(sched, window_capacity=256)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        points = ramp(100)
        await platform.ingest(sensor_id, {c0: points})
        agg = await platform.range_aggregate(c0, 10.0, 90.0)
        return points, agg

    points, agg = sched.run_until_complete(main())
    window = [v for t, v in points if 10.0 <= t < 90.0]
    assert agg["count"] == len(window)
    assert agg["min"] == min(window)
    assert agg["max"] == max(window)
    assert agg["sum"] == pytest.approx(sum(window))
    assert agg["mean"] == pytest.approx(sum(window) / len(window))


def test_whole_block_eviction_reaches_archive_compressed(sched):
    archive = ArchiveLog(block_size=512)
    platform = build_platform(sched, archive=archive)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        # Two full-capacity batches: the second evicts the first 64 points
        # as whole sealed blocks, which the archive stores still-compressed.
        await platform.ingest(sensor_id, {c0: ramp(64)})
        await platform.ingest(sensor_id, {c0: ramp(64, t0=1000.0)})
        depth = await platform.runtime.ref(
            "PhysicalSensorChannel", c0
        ).depth()
        return c0, depth

    c0, depth = sched.run_until_complete(main())
    assert depth == 64
    assert archive.sealed_records == 64  # arrived as blocks, not records
    assert archive.records_decoded == 0
    archived = archive.read_range(c0, 0.0, 100.0)
    assert [(r.timestamp, r.payload) for r in archived] == ramp(64)


def test_conservation_across_window_and_archive(sched):
    archive = ArchiveLog(block_size=32)
    platform = build_platform(sched, archive=archive)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        points = ramp(200)
        for offset in range(0, 200, 10):
            await platform.ingest(sensor_id, {c0: points[offset:offset + 10]})
        retained = await platform.raw_range(c0, 0.0, 1000.0)
        archived = archive.read_range(c0, 0.0, 1000.0)
        return points, retained, archived

    points, retained, archived = sched.run_until_complete(main())
    assert [(r.timestamp, r.payload) for r in archived] + retained == points


def test_sensor_storage_stats_fans_out(sched):
    platform = build_platform(sched)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        c1 = channel_id_for(sensor_id, 1)
        await platform.ingest(
            sensor_id, {c0: ramp(40), c1: ramp(40, t0=0.5)}
        )
        return await platform.storage_stats(sensor_id)

    stats = sched.run_until_complete(main())
    assert stats["channels"] == 3  # two physical + one virtual
    # The virtual channel derives nothing here (timestamps never align),
    # so the totals are the two physical windows.
    assert stats["points"] == 80
    assert stats["blocks"] == 4
    assert stats["live_bytes"] < stats["raw_equivalent_bytes"]


def test_cluster_storage_probes_track_channel_lifecycle(sched):
    platform = build_platform(sched)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: ramp(50)})
        live = platform.runtime.metrics.cluster_totals()
        await platform.runtime.deactivate("PhysicalSensorChannel", c0)
        idle = platform.runtime.metrics.cluster_totals()
        # Reactivate: the re-opened window re-registers its points.
        await platform.raw_range(c0, 0.0, 100.0)
        back = platform.runtime.metrics.cluster_totals()
        return live, idle, back

    live, idle, back = sched.run_until_complete(main())
    assert live["storage.blocks_sealed"] == 3.0
    assert live["storage.block_bytes"] > 0.0
    assert live["storage.compression_ratio"] > 1.0
    # Deactivation detaches the series from the probes (no double count
    # when it re-opens, possibly on another silo).
    assert idle["storage.block_bytes"] == 0.0
    assert back["storage.block_bytes"] == live["storage.block_bytes"]


def test_configure_block_size_zero_disables_tiering(sched):
    platform = build_platform(sched, block_size=0)

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        c0 = channel_id_for(sensor_id, 0)
        await platform.ingest(sensor_id, {c0: ramp(50)})
        channel = platform.runtime.ref("PhysicalSensorChannel", c0)
        stats = await channel.storage_stats()
        raw = await platform.raw_range(c0, 0.0, 100.0)
        return stats, raw

    stats, raw = sched.run_until_complete(main())
    assert stats["blocks"] == 0
    assert stats["head_points"] == 50
    assert raw == ramp(50)
