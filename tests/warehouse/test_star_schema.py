"""Unit tests for the star-schema analytical tier."""

import pytest

from repro.storage import ArchiveLog
from repro.warehouse import StarSchema, parse_channel_id, time_key_of


def test_parse_channel_id_scheme():
    dim = parse_channel_id("org-3/s-7/c-1")
    assert dim.org_id == "org-3"
    assert dim.sensor_id == "org-3/s-7"
    assert not dim.is_virtual
    virtual = parse_channel_id("org-3/s-7/vc")
    assert virtual.is_virtual


def test_parse_degenerate_channel_id():
    dim = parse_channel_id("weird")
    assert dim.org_id == "unknown"


def test_time_key_hour_grain():
    assert time_key_of(0.0) == 0
    assert time_key_of(3599.9) == 0
    assert time_key_of(3600.0) == 1
    assert time_key_of(120.0, grain_seconds=60) == 2


def test_load_facts_and_dimension_dedup():
    schema = StarSchema()
    schema.load_fact("org-0/s-0/c-0", 10.0, 1.0)
    schema.load_fact("org-0/s-0/c-0", 20.0, 2.0)
    schema.load_fact("org-0/s-1/c-0", 30.0, 3.0)
    assert schema.fact_count == 3
    assert schema.channel_count == 2


def test_aggregate_by_org():
    schema = StarSchema()
    for i in range(4):
        schema.load_fact(f"org-0/s-{i % 2}/c-0", float(i), float(i))
    schema.load_fact("org-1/s-0/c-0", 0.0, 100.0)
    rows = schema.aggregate(group_by=("org_id",))
    assert [row.group for row in rows] == [("org-0",), ("org-1",)]
    org0 = rows[0]
    assert org0.count == 4
    assert org0.mean == pytest.approx(1.5)
    assert rows[1].maximum == 100.0


def test_aggregate_by_time_and_filter():
    schema = StarSchema(time_grain_seconds=60)
    for ts in (0, 30, 61, 62, 130):
        schema.load_fact("org-0/s-0/c-0", float(ts), 1.0)
    rows = schema.aggregate(
        group_by=("time_key",),
        where=lambda dim, fact: fact.timestamp < 100,
    )
    assert [(row.group[0], row.count) for row in rows] == [(0, 2), (1, 2)]


def test_aggregate_unknown_attribute_rejected():
    with pytest.raises(ValueError):
        StarSchema().aggregate(group_by=("favourite_color",))


def test_time_series_for_channel():
    schema = StarSchema(time_grain_seconds=60)
    for ts, value in [(0, 2.0), (30, 4.0), (70, 6.0)]:
        schema.load_fact("c-main", float(ts), value)
    schema.load_fact("c-other", 0.0, 999.0)
    series = schema.time_series("c-main")
    assert series == [(0, 3.0), (1, 6.0)]
    assert schema.time_series("missing") == []


def test_load_archive_export_path():
    archive = ArchiveLog()
    for ts in range(5):
        archive.append("org-0/s-0/c-0", float(ts), float(ts * 10))
    archive.append("org-0/s-0/c-1", 0.0, 7.0)
    schema = StarSchema()
    loaded = schema.load_archive(archive)
    assert loaded == 6
    assert schema.fact_count == 6
    rows = schema.aggregate(group_by=("channel_id",))
    assert {row.group[0] for row in rows} == {"org-0/s-0/c-0", "org-0/s-0/c-1"}


def test_load_archive_selected_streams():
    archive = ArchiveLog()
    archive.append("a", 0.0, 1.0)
    archive.append("b", 0.0, 2.0)
    schema = StarSchema()
    assert schema.load_archive(archive, streams=["a"]) == 1
    assert schema.channel_count == 1
