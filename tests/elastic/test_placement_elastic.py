"""Elastic placement: hash_ring remap bounds, power_of_two, draining filters."""

import random

import pytest

from repro.runtime import Actor, ActorKey, AodbRuntime, RuntimeConfig
from repro.runtime.placement import (
    HashPlacement,
    HashRingPlacement,
    PowerOfTwoPlacement,
    build_strategies,
)


def keys(n=400):
    return [ActorKey("Sensor", f"org-{i % 7}/s-{i}") for i in range(n)]


# -- hash_ring ---------------------------------------------------------------------


def test_hash_ring_is_stable_and_distributes():
    strategy = HashRingPlacement()
    silos = [f"silo-{i}" for i in range(4)]
    first = {k: strategy.choose(k, "client", silos) for k in keys()}
    again = {k: strategy.choose(k, "client", silos) for k in keys()}
    assert first == again
    counts = {s: 0 for s in silos}
    for silo in first.values():
        counts[silo] += 1
    # With 64 virtual nodes per silo the spread is rough but every silo
    # owns a meaningful share (ideal = 100 of 400).
    assert all(count > 40 for count in counts.values())


def test_hash_ring_remaps_about_one_over_n_on_leave():
    """Removing one of four silos moves ~25% of keys; modulo moves ~75%."""
    ring = HashRingPlacement()
    modulo = HashPlacement()
    silos = [f"silo-{i}" for i in range(4)]
    survivors = silos[:-1]
    sample = keys()

    ring_before = [ring.choose(k, "client", silos) for k in sample]
    ring_after = [ring.choose(k, "client", survivors) for k in sample]
    ring_moved = sum(1 for b, a in zip(ring_before, ring_after) if b != a)

    mod_before = [modulo.choose(k, "client", silos) for k in sample]
    mod_after = [modulo.choose(k, "client", survivors) for k in sample]
    mod_moved = sum(1 for b, a in zip(mod_before, mod_after) if b != a)

    n = len(sample)
    # Every key on the departed silo must move; little else should.
    assert ring_moved >= sum(1 for b in ring_before if b == silos[-1])
    assert ring_moved / n < 0.45  # ~1/N plus virtual-node jitter
    assert mod_moved / n > 0.55  # modulo reshuffles most of the space
    assert ring_moved < mod_moved


def test_hash_ring_remaps_only_new_arcs_on_join():
    ring = HashRingPlacement()
    silos = ["silo-0", "silo-1", "silo-2"]
    grown = silos + ["silo-3"]
    sample = keys()
    before = [ring.choose(k, "client", silos) for k in sample]
    after = [ring.choose(k, "client", grown) for k in sample]
    moved = [(b, a) for b, a in zip(before, after) if b != a]
    # Keys only ever move *to* the joining silo, never between survivors.
    assert moved and all(a == "silo-3" for _, a in moved)
    assert len(moved) / len(sample) < 0.45


def test_hash_ring_rejects_bad_virtual_nodes():
    with pytest.raises(ValueError):
        HashRingPlacement(virtual_nodes=0)


# -- power_of_two ------------------------------------------------------------------


def test_power_of_two_prefers_less_loaded_probe():
    loads = {"a": 10, "b": 0, "c": 10}
    strategy = PowerOfTwoPlacement(random.Random(3), loads.__getitem__)
    chosen = [
        strategy.choose(ActorKey("T", str(i)), "client", ["a", "b", "c"])
        for i in range(60)
    ]
    # "b" wins every probe pair it appears in — roughly 2/3 of draws.
    assert chosen.count("b") > 30
    assert set(chosen) <= {"a", "b", "c"}


def test_power_of_two_single_silo_short_circuits():
    strategy = PowerOfTwoPlacement(random.Random(1), lambda s: 0)
    assert strategy.choose(ActorKey("T", "x"), "client", ["only"]) == "only"


def test_power_of_two_tie_is_deterministic():
    strategy = PowerOfTwoPlacement(random.Random(7), lambda s: 0)
    silos = ["a", "b", "c"]
    mirror = PowerOfTwoPlacement(random.Random(7), lambda s: 0)
    for i in range(20):
        k = ActorKey("T", str(i))
        assert strategy.choose(k, "client", silos) == mirror.choose(
            k, "client", silos
        )


# -- registry ----------------------------------------------------------------------


def test_build_strategies_gates_power_of_two_on_probe():
    without = build_strategies(random.Random(1))
    assert "power_of_two" not in without
    assert {"random", "hash", "hash_ring", "prefer_local", "pinned"} <= set(
        without
    )
    with_probe = build_strategies(random.Random(1), load_probe=lambda s: 0)
    assert "power_of_two" in with_probe


def test_build_strategies_rejects_unknown_fallback():
    with pytest.raises(ValueError, match="unknown placement fallback"):
        build_strategies(random.Random(1), fallback="bogus")


def test_build_strategies_fallback_feeds_prefer_local_and_pinned():
    strategies = build_strategies(
        random.Random(1), load_probe=lambda s: {"a": 9, "b": 0}[s],
        fallback="power_of_two",
    )
    # A client caller falls through prefer_local to the load-aware pick.
    choices = {
        strategies["prefer_local"].choose(ActorKey("T", str(i)), "client", ["a", "b"])
        for i in range(10)
    }
    assert choices == {"b"}


# -- draining silos are never placement targets ------------------------------------


class Echo(Actor):
    async def where(self):
        return self.context.silo_id


class LocalEcho(Echo):
    placement = "prefer_local"


class PinnedEcho(Echo):
    placement = "pinned"


class RingEcho(Echo):
    placement = "hash_ring"


def build_runtime(sched, silos=3):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config)
    for i in range(1, silos + 1):
        runtime.add_silo(f"silo-{i}", cores=2)
    runtime.register_actors([Echo, LocalEcho, PinnedEcho, RingEcho])
    return runtime


def test_prefer_local_skips_draining_caller_silo(sched):
    runtime = build_runtime(sched)

    class Parent(Actor):
        placement = "pinned"

        async def spawn_child(self, child_id):
            child = self.context.actor("LocalEcho", child_id)
            return self.context.silo_id, await child.where()

    runtime.register_actor(Parent)
    runtime.pinned_placement.pin(ActorKey("Parent", "p"), "silo-1")

    async def main():
        ref = runtime.ref("Parent", "p")
        home, child_home = await ref.spawn_child("before")
        assert home == child_home == "silo-1"
        # Mark the parent's silo draining: it keeps serving the parent, but
        # fresh prefer-local children must land elsewhere.
        runtime.silo("silo-1").draining = True
        home, child_home = await ref.spawn_child("after")
        assert home == "silo-1"
        assert child_home != "silo-1"

    sched.run_until_complete(main())


def test_pinned_skips_draining_target(sched):
    runtime = build_runtime(sched)
    runtime.pinned_placement.pin(ActorKey("PinnedEcho", "x"), "silo-2")
    runtime.silo("silo-2").draining = True

    async def main():
        return await runtime.ref("PinnedEcho", "x").where()

    assert sched.run_until_complete(main()) != "silo-2"


def test_hash_ring_through_runtime_avoids_draining_silo(sched):
    runtime = build_runtime(sched)
    runtime.silo("silo-3").draining = True

    async def main():
        hosts = set()
        for i in range(30):
            hosts.add(await runtime.ref("RingEcho", f"r{i}").where())
        return hosts

    hosts = sched.run_until_complete(main())
    assert "silo-3" not in hosts
    assert hosts == {"silo-1", "silo-2"}
