"""Rebalancer policy: hysteresis, budget, pin-respect, load windowing."""

import pytest

from repro.elastic import (
    Rebalancer,
    RebalancerConfig,
    WindowedCpuLoad,
    imbalance,
    silo_mailbox_depths,
)
from repro.runtime import Actor, ActorKey, AodbRuntime, RuntimeConfig


class Echo(Actor):
    async def ping(self):
        return self.context.silo_id


def build_runtime(sched):
    """One-silo runtime; tests add silo-2 after seeding actors on silo-1."""
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        idle_timeout=100.0,
        collection_interval=10.0,
    )
    runtime = AodbRuntime(sched, config=config)
    runtime.add_silo("silo-1", cores=2)
    runtime.register_actor(Echo)
    return runtime


async def seed_actors(runtime, n=8):
    for i in range(n):
        await runtime.ref("Echo", f"e{i}").ping()


def fake_loads(rebalancer, loads):
    """Pin the observation the control loop sees (policy tests only)."""
    rebalancer._window.observe = lambda: dict(loads)


# -- config / helpers --------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"interval": 0.0},
        {"imbalance_threshold": 1.0},
        {"hysteresis_cycles": 0},
        {"migration_budget": 0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        RebalancerConfig(**kwargs).validate()


def test_imbalance_math():
    assert imbalance({}) == 1.0
    assert imbalance({"a": 0.9}) == 1.0
    assert imbalance({"a": 0.5, "b": 0.5}) == 1.0
    # Epsilon keeps an idle silo finite: (0.95+.05)/(0+.05) = 20.
    assert imbalance({"a": 0.95, "b": 0.0}) == pytest.approx(20.0)


def test_silo_mailbox_depths_parses_labels():
    snapshot = {
        "silo.mailbox_depth{silo=silo-1}": 7,
        "silo.mailbox_depth{silo=silo-2}": 0.0,
        "silo.cpu_utilization{silo=silo-1}": 0.5,
        "other.metric": 3,
    }
    assert silo_mailbox_depths(snapshot) == {"silo-1": 7.0, "silo-2": 0.0}


def test_windowed_load_skips_draining_and_forgets_departed(sched):
    runtime = build_runtime(sched)
    runtime.add_silo("silo-2", cores=2)
    window = WindowedCpuLoad(runtime)
    assert set(window.observe()) == {"silo-1", "silo-2"}
    runtime.silo("silo-2").draining = True
    assert set(window.observe()) == {"silo-1"}
    assert "silo-2" not in window._previous


# -- policy ------------------------------------------------------------------------


def test_requires_hysteresis_streak_before_acting(sched):
    runtime = build_runtime(sched)
    sched.run_until_complete(seed_actors(runtime))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(
        runtime, RebalancerConfig(hysteresis_cycles=3, migration_budget=2)
    )
    fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})

    async def main():
        moved = [await rebalancer.run_cycle() for _ in range(3)]
        return moved

    assert sched.run_until_complete(main()) == [0, 0, 2]
    assert rebalancer.migrations == 2
    assert runtime.stats.migrations == 2
    assert all(e.source == "silo-1" and e.target == "silo-2"
               for e in rebalancer.events)


def test_streak_resets_when_balance_recovers(sched):
    runtime = build_runtime(sched)
    sched.run_until_complete(seed_actors(runtime))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(runtime, RebalancerConfig(hysteresis_cycles=2))

    async def main():
        fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})
        assert await rebalancer.run_cycle() == 0  # streak 1
        fake_loads(rebalancer, {"silo-1": 0.5, "silo-2": 0.5})
        assert await rebalancer.run_cycle() == 0  # balanced: streak reset
        fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})
        assert await rebalancer.run_cycle() == 0  # streak 1 again, not 2

    sched.run_until_complete(main())
    assert rebalancer.migrations == 0


def test_idle_cluster_is_left_alone(sched):
    """High ratio but tiny absolute load: min_utilization gates it."""
    runtime = build_runtime(sched)
    sched.run_until_complete(seed_actors(runtime))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(
        runtime, RebalancerConfig(hysteresis_cycles=1, min_utilization=0.10)
    )
    fake_loads(rebalancer, {"silo-1": 0.05, "silo-2": 0.0})

    async def main():
        for _ in range(4):
            assert await rebalancer.run_cycle() == 0

    sched.run_until_complete(main())


def test_budget_and_gap_cap_bound_each_wave(sched):
    runtime = build_runtime(sched)
    sched.run_until_complete(seed_actors(runtime, n=10))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(
        runtime, RebalancerConfig(hysteresis_cycles=1, migration_budget=3)
    )
    fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})

    async def main():
        waves = []
        for _ in range(4):
            waves.append(await rebalancer.run_cycle())
        return waves

    waves = sched.run_until_complete(main())
    # Budget caps the first wave at 3; the half-gap cap shrinks later waves
    # as counts converge (10/0 -> 7/3 -> 5/5), down to the minimum of 1 per
    # wave while the (frozen, synthetic) loads still claim imbalance.
    assert waves == [3, 2, 1, 1]


def test_convergence_does_not_ping_pong(sched):
    """Equal loads seen post-move: the rebalancer must go quiet, not flip."""
    runtime = build_runtime(sched)
    sched.run_until_complete(seed_actors(runtime, n=6))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(
        runtime, RebalancerConfig(hysteresis_cycles=1, migration_budget=8)
    )

    async def main():
        fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})
        first = await rebalancer.run_cycle()
        fake_loads(rebalancer, {"silo-1": 0.5, "silo-2": 0.5})
        later = [await rebalancer.run_cycle() for _ in range(3)]
        return first, later

    first, later = sched.run_until_complete(main())
    assert first >= 1
    assert later == [0, 0, 0]


def test_pinned_activations_are_never_moved(sched):
    runtime = build_runtime(sched)
    for i in range(4):
        runtime.pinned_placement.pin(ActorKey("Echo", f"e{i}"), "silo-1")
    sched.run_until_complete(seed_actors(runtime, n=4))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(
        runtime, RebalancerConfig(hysteresis_cycles=1, migration_budget=8)
    )
    fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})

    async def main():
        return [await rebalancer.run_cycle() for _ in range(3)]

    assert sched.run_until_complete(main()) == [0, 0, 0]
    assert runtime.silo("silo-1").activation_count == 4
    assert rebalancer.migrations == 0


def test_attach_runs_on_timer_and_detach_stops(sched):
    runtime = build_runtime(sched)
    sched.run_until_complete(seed_actors(runtime))
    runtime.add_silo("silo-2", cores=2)
    rebalancer = Rebalancer(
        runtime, RebalancerConfig(interval=1.0, hysteresis_cycles=1)
    )
    fake_loads(rebalancer, {"silo-1": 0.9, "silo-2": 0.0})
    rebalancer.attach(sched)
    with pytest.raises(RuntimeError):
        rebalancer.attach(sched)

    async def main():
        await sched.sleep(3.5)

    sched.run_until_complete(main())
    assert rebalancer.cycles == 3
    assert rebalancer.migrations >= 1
    rebalancer.detach()
    cycles = rebalancer.cycles

    async def idle():
        await sched.sleep(5.0)

    sched.run_until_complete(idle())
    assert rebalancer.cycles == cycles
    rebalancer.detach()  # idempotent
