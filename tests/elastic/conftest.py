"""Shared fixtures for elasticity tests."""

import pytest

from repro.kernel import Scheduler
from repro.runtime import AodbRuntime, RuntimeConfig


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def runtime(sched):
    """A two-silo runtime with near-zero costs for functional tests."""
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        idle_timeout=100.0,
        collection_interval=10.0,
    )
    rt = AodbRuntime(sched, config=config)
    rt.add_silo("silo-1", cores=2)
    rt.add_silo("silo-2", cores=2)
    return rt


@pytest.fixture
def three_silo_runtime(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    rt = AodbRuntime(sched, config=config)
    for index in (1, 2, 3):
        rt.add_silo(f"silo-{index}", cores=2)
    return rt
