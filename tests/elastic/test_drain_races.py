"""Races between silo decommissioning and live traffic.

The ISSUE's elasticity acceptance: in-flight asks must survive both
``shutdown_silo`` (deactivate-in-place) and ``drain_silo`` (migrate-out),
and the DirectoryCache hit-validation path must stay correct when a
NetworkFaultInjector delays messages across the drain window.
"""

import random

import pytest

from repro.errors import SiloUnavailableError
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network, NetworkFaultInjector
from repro.runtime import (
    Actor,
    ActorKey,
    AodbRuntime,
    RuntimeConfig,
    WritePolicy,
)


class Tally(Actor):
    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE
    placement = "pinned"

    async def bump(self):
        self.state["count"] = self.state.get("count", 0) + 1
        self.mark_dirty()
        return self.state["count"]

    async def count(self):
        return self.state.get("count", 0)

    async def where(self):
        return self.context.silo_id


def build_runtime(sched, silos=2):
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        idle_timeout=100.0,
        collection_interval=10.0,
    )
    runtime = AodbRuntime(
        sched,
        config=config,
        network=Network(sched, lan=ConstantLatency(0.001)),
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    runtime.register_actor(Tally)
    return runtime


def pin_on(runtime, silo_id, n):
    refs = []
    for i in range(n):
        runtime.pinned_placement.pin(ActorKey("Tally", f"t{i}"), silo_id)
        refs.append(runtime.ref("Tally", f"t{i}"))
    return refs


def test_shutdown_silo_races_in_flight_asks(sched):
    """Asks in flight when the silo stops all complete; none are lost."""
    runtime = build_runtime(sched)
    refs = pin_on(runtime, "silo-0", 5)

    async def main():
        for ref in refs:
            assert await ref.where() == "silo-0"
        # 10 asks per actor race the shutdown barrier.
        futures = [ref.ask("bump") for ref in refs for _ in range(10)]
        await runtime.shutdown_silo("silo-0")
        results = await sched.gather(futures)
        # Deactivation persisted whatever each source activation handled
        # before its barrier; racers re-resolved onto silo-1 (the pin is
        # ignored for a dead silo) and found the persisted count — so the
        # per-actor results are exactly 1..10 in some interleaving.
        for i, ref in enumerate(refs):
            per_actor = sorted(results[i * 10 : (i + 1) * 10])
            assert per_actor == list(range(1, 11))
            assert await ref.where() == "silo-1"
            assert await ref.count() == 10

    sched.run_until_complete(main())
    assert runtime.stats.dropped_messages == 0
    assert "silo-0" not in {s.silo_id for s in runtime.silos()}


def test_drain_silo_races_in_flight_asks(sched):
    """A graceful drain migrates live actors; racing asks are forwarded."""
    runtime = build_runtime(sched)
    refs = pin_on(runtime, "silo-0", 5)

    async def main():
        for ref in refs:
            assert await ref.where() == "silo-0"
        # Unpin so the migration is not undone at the next activation.
        runtime.pinned_placement._pins.clear()
        futures = [ref.ask("bump") for ref in refs for _ in range(10)]
        migrated = await runtime.drain_silo("silo-0")
        results = await sched.gather(futures)
        return migrated, results

    migrated, results = sched.run_until_complete(main())
    # Actors were live when the drain started (first ask activated them).
    assert migrated == 5
    for i in range(5):
        per_actor = sorted(results[i * 10 : (i + 1) * 10])
        assert per_actor == list(range(1, 11))

    async def verify():
        for ref in refs:
            assert await ref.where() == "silo-1"
            assert await ref.count() == 10

    sched.run_until_complete(verify())
    assert runtime.stats.silos_drained == 1
    assert runtime.stats.migrations == 5
    assert runtime.stats.dropped_messages == 0


def test_drain_silo_without_peers_raises(sched):
    runtime = build_runtime(sched, silos=1)

    async def main():
        with pytest.raises(SiloUnavailableError):
            await runtime.drain_silo("silo-0")

    sched.run_until_complete(main())
    # The silo survives a refused drain.
    assert not runtime.silo("silo-0").draining


def test_directory_cache_validation_under_chaos_during_drain(sched):
    """Stale cache entries self-repair while the network is degraded.

    A client keeps asking across a drain while every message takes extra
    delay (chaos that reorders timing but loses nothing, so exactly-once
    assertions stay honest).  Cache hits that point at the drained silo
    must fail validation, re-resolve, and land on the survivor.
    """
    runtime = build_runtime(sched)
    refs = pin_on(runtime, "silo-0", 4)

    async def main():
        # Warm the client-endpoint cache with silo-0 routes.
        for ref in refs:
            assert await ref.where() == "silo-0"
        runtime.pinned_placement._pins.clear()
        cache = runtime._directory_cache("client")
        assert all(cache.get(ref.key) == "silo-0" for ref in refs)

        runtime.network.inject_faults(
            NetworkFaultInjector(
                random.Random(11),
                extra_delay=0.005,
                start=sched.now,
                end=sched.now + 5.0,
            )
        )
        futures = [ref.ask("bump") for ref in refs for _ in range(8)]
        migrated = await runtime.drain_silo("silo-0")
        results = await sched.gather(futures)
        runtime.network.inject_faults(None)

        assert migrated == 4
        for i in range(4):
            per_actor = sorted(results[i * 8 : (i + 1) * 8])
            assert per_actor == list(range(1, 9))
        # Every stale route was invalidated by the migration fan-out; the
        # next sends re-resolved and repopulated the cache with silo-1.
        for ref in refs:
            assert cache.get(ref.key) in (None, "silo-1")
            assert await ref.where() == "silo-1"
            assert await ref.count() == 8

    sched.run_until_complete(main())
    cache_stats = runtime._directory_cache("client").stats
    assert cache_stats.invalidations >= 4
    assert runtime.stats.dropped_messages == 0


def test_cache_hit_on_draining_silo_still_serves(sched):
    """Draining only blocks *new placements* — residents keep serving, and
    cached routes to them stay valid until the migration repoints them."""
    runtime = build_runtime(sched)
    refs = pin_on(runtime, "silo-0", 1)

    async def main():
        ref = refs[0]
        await ref.bump()
        cache = runtime._directory_cache("client")
        assert cache.get(ref.key) == "silo-0"
        runtime.silo("silo-0").draining = True
        # A cached hit on a draining (but live) silo is still a valid route.
        assert await ref.where() == "silo-0"
        assert await ref.bump() == 2

    sched.run_until_complete(main())
