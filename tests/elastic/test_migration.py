"""Live activation migration: lossless, exactly-once, state-preserving."""

import pytest

from repro.errors import SiloUnavailableError
from repro.obs.trace import Tracer
from repro.runtime import (
    Actor,
    ActorKey,
    AodbRuntime,
    RuntimeConfig,
    WritePolicy,
)
from repro.runtime.resilience import RetryPolicy


class Counter(Actor):
    """Durable counter: state rides the migration's persistence flush."""

    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE

    async def add(self, n=1):
        self.state["value"] = self.state.get("value", 0) + n
        self.mark_dirty()
        return self.state["value"]

    async def record(self, seq):
        seen = self.state.setdefault("seen", [])
        seen.append(seq)
        self.mark_dirty()
        return len(seen)

    async def dump(self):
        return self.state.get("value", 0), list(self.state.get("seen", []))

    async def where(self):
        return self.context.silo_id


class VolatileCounter(Actor):
    """Non-durable: in-memory state follows ordinary deactivation rules."""

    async def add(self, n=1):
        self.value = getattr(self, "value", 0) + n
        return self.value


def key(actor_id="c1", type_name="Counter"):
    return ActorKey(type_name, actor_id)


def test_migrate_moves_live_activation_and_repoints_directory(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.add(5)
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        assert await runtime.migrate(key(), target) is True
        assert runtime.directory.lookup(key()) == target
        # Served on the target, with in-memory state carried over.
        assert await ref.where() == target
        assert await ref.add(1) == 6
        assert runtime.silo(source).get_activation(key()) is None
        assert runtime.silo(target).get_activation(key()) is not None

    sched.run_until_complete(main())
    assert runtime.stats.migrations == 1
    assert runtime.stats.migration_failures == 0


def test_migrate_state_round_trips_through_persistence(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        for _ in range(10):
            await ref.add(1)
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        assert await runtime.migrate(key(), target)
        # The close path flushed through persistence (ON_DEACTIVATE), and
        # the successor loaded the exact same snapshot.
        stored = await runtime.grain_storage.get(key().storage_key())
        assert stored.value == {"value": 10}
        assert await ref.add(1) == 11

    sched.run_until_complete(main())


def test_migrate_nondurable_resets_like_ordinary_deactivation(sched, runtime):
    """Volatile state follows the same rules as a normal deactivate cycle."""
    runtime.register_actor(VolatileCounter)

    async def main():
        ref = runtime.ref("VolatileCounter", "v1")
        await ref.add(5)
        k = key("v1", "VolatileCounter")
        source = runtime.directory.lookup(k)
        target = "silo-2" if source == "silo-1" else "silo-1"
        assert await runtime.migrate(k, target)
        # Non-durable actors restart fresh — identical to deactivation.
        assert await ref.add(1) == 1

    sched.run_until_complete(main())


def test_migrate_without_activation_returns_false(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        return await runtime.migrate(key(), "silo-2")

    assert sched.run_until_complete(main()) is False
    assert runtime.stats.migration_failures == 1


def test_migrate_to_current_silo_returns_false(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.add()
        source = runtime.directory.lookup(key())
        return await runtime.migrate(key(), source)

    assert sched.run_until_complete(main()) is False
    assert runtime.stats.migrations == 0


def test_migrate_rejects_unusable_targets(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.add()
        source = runtime.directory.lookup(key())
        other = "silo-2" if source == "silo-1" else "silo-1"
        runtime.silo(other).draining = True
        with pytest.raises(SiloUnavailableError):
            await runtime.migrate(key(), other)
        runtime.silo(other).draining = False
        runtime.crash_silo(other)
        with pytest.raises(SiloUnavailableError):
            await runtime.migrate(key(), other)
        with pytest.raises(SiloUnavailableError):
            await runtime.migrate(key(), "no-such-silo")

    sched.run_until_complete(main())
    assert runtime.stats.migrations == 0
    assert runtime.stats.migration_failures >= 2


def test_concurrent_sends_survive_migration_exactly_once(sched, runtime):
    """Messages racing the move are forwarded, never lost or duplicated."""
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.record(0)
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        futures = [ref.ask("record", seq) for seq in range(1, 101)]
        moved = await runtime.migrate(key(), target)
        await sched.gather(futures)
        assert moved
        _value, seen = await ref.ask("dump")
        return seen

    seen = sched.run_until_complete(main())
    # Exactly-once: every sequence number exactly once.  Concurrent
    # in-flight sends carry no ordering guarantee across the move (racers
    # parked at the drain barrier re-resolve after fresh sends reach the
    # target), so assert set-exactness, not order.
    assert sorted(seen) == list(range(101))


def test_sequential_asks_stay_ordered_across_migration(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        for seq in range(5):
            await ref.record(seq)
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        assert await runtime.migrate(key(), target)
        for seq in range(5, 10):
            await ref.record(seq)
        _value, seen = await ref.dump()
        return seen

    assert sched.run_until_complete(main()) == list(range(10))


def test_migration_emits_trace_span(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config, tracer=Tracer(enabled=True))
    runtime.add_silo("silo-1", cores=2)
    runtime.add_silo("silo-2", cores=2)
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.add()
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        assert await runtime.migrate(key(), target)

    sched.run_until_complete(main())
    spans = [s for s in runtime.tracer.spans() if s.kind == "migrate"]
    assert len(spans) == 1
    assert "migrate->" in spans[0].name


def test_deadline_and_retry_semantics_unchanged_during_migration(sched, runtime):
    """A deadline'd resilient ask issued mid-move completes without retries."""
    runtime.register_actor(Counter)
    policy = RetryPolicy(max_attempts=3, base_delay=0.1)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.add()
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        future = ref.ask("add", 1, deadline=5.0, retry=policy)
        assert await runtime.migrate(key(), target)
        await future

    sched.run_until_complete(main())
    # The racer waited at the barrier and was forwarded — no retry fired,
    # no deadline tripped: semantics identical to an ordinary deactivation.
    assert runtime.stats.calls_retried == 0
    assert runtime.stats.deadlines_exceeded == 0


def test_directory_cache_invalidated_by_migration(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.add()
        source = runtime.directory.lookup(key())
        target = "silo-2" if source == "silo-1" else "silo-1"
        # Warm the client cache, then migrate: the unregister subscription
        # must purge the stale route so the next send re-resolves.
        cache = runtime._directory_cache("client")
        cache.put(key(), source)
        assert await runtime.migrate(key(), target)
        assert cache.get(key()) is None
        assert await ref.where() == target

    sched.run_until_complete(main())
