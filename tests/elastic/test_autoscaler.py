"""Autoscaler policy: SLO-triggered growth, idle-driven drain, cooldowns."""

import pytest

from repro.elastic import Autoscaler, AutoscalerConfig, SiloSpec
from repro.runtime import Actor, AodbRuntime, RuntimeConfig


class Echo(Actor):
    async def ping(self):
        return self.context.silo_id


class FakeMonitor:
    """Stands in for HealthMonitor: the autoscaler only calls active()."""

    def __init__(self):
        self.firing = []

    def active(self):
        return list(self.firing)


def build_runtime(sched, silos=1):
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        idle_timeout=100.0,
        collection_interval=10.0,
    )
    runtime = AodbRuntime(sched, config=config)
    for i in range(1, silos + 1):
        runtime.add_silo(f"silo-{i}", cores=2)
    runtime.register_actor(Echo)
    return runtime


def build_autoscaler(runtime, monitor=None, pool=None, **kwargs):
    monitor = monitor or FakeMonitor()
    pool = pool if pool is not None else [SiloSpec("scale-1"), SiloSpec("scale-2")]
    scaler = Autoscaler(runtime, monitor, pool, AutoscalerConfig(**kwargs))
    return scaler, monitor


def fake_loads(scaler, loads):
    scaler._window.observe = lambda: dict(loads)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"interval": 0.0},
        {"min_silos": 0},
        {"min_silos": 3, "max_silos": 2},
        {"scale_down_cycles": 0},
        {"scale_up_cycles": 0},
        {"cooldown_seconds": -1.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        AutoscalerConfig(**kwargs).validate()


def test_firing_rule_adds_silo_from_pool(sched):
    runtime = build_runtime(sched)
    scaler, monitor = build_autoscaler(runtime, cooldown_seconds=0.0)
    monitor.firing = ["mailbox-backlog"]

    event = sched.run_until_complete(scaler.run_cycle())
    assert event is not None and event.direction == "up"
    assert event.reason == "mailbox-backlog"
    assert event.silo_id == "scale-1"
    assert runtime.silo("scale-1") is not None
    assert [spec.silo_id for spec in scaler.pool] == ["scale-2"]
    assert scaler.scale_ups == 1


def test_unrelated_rule_does_not_trigger(sched):
    runtime = build_runtime(sched)
    scaler, monitor = build_autoscaler(runtime, cooldown_seconds=0.0)
    monitor.firing = ["ingest-rate"]  # not in scale_up_rules

    assert sched.run_until_complete(scaler.run_cycle()) is None
    assert scaler.scale_ups == 0


def test_cooldown_blocks_consecutive_scale_ups(sched):
    runtime = build_runtime(sched)
    scaler, monitor = build_autoscaler(runtime, cooldown_seconds=10.0)
    monitor.firing = ["mailbox-backlog"]

    async def main():
        first = await scaler.run_cycle()
        second = await scaler.run_cycle()  # same virtual instant: locked out
        return first, second

    first, second = sched.run_until_complete(main())
    assert first is not None and second is None
    assert scaler.scale_ups == 1


def test_max_silos_and_empty_pool_cap_growth(sched):
    runtime = build_runtime(sched, silos=2)
    scaler, monitor = build_autoscaler(
        runtime, pool=[SiloSpec("scale-1")], max_silos=2, cooldown_seconds=0.0
    )
    monitor.firing = ["mailbox-backlog"]
    assert sched.run_until_complete(scaler.run_cycle()) is None  # at max

    runtime2 = build_runtime(sched, silos=1)
    scaler2, monitor2 = build_autoscaler(
        runtime2, pool=[], cooldown_seconds=0.0
    )
    monitor2.firing = ["mailbox-backlog"]
    assert sched.run_until_complete(scaler2.run_cycle()) is None  # pool empty


def test_cpu_trigger_scales_up_after_streak(sched):
    runtime = build_runtime(sched)
    scaler, _ = build_autoscaler(
        runtime,
        scale_up_utilization=0.70,
        scale_up_cycles=2,
        cooldown_seconds=0.0,
    )
    fake_loads(scaler, {"silo-1": 0.9})

    async def main():
        first = await scaler.run_cycle()  # hot streak 1: below scale_up_cycles
        second = await scaler.run_cycle()  # hot streak 2: acts
        return first, second

    first, second = sched.run_until_complete(main())
    assert first is None
    assert second is not None and second.reason == "cpu-utilization"


def test_cpu_trigger_uses_mean_not_max(sched):
    """One hot silo plus a cold one must not double-fire the CPU trigger."""
    runtime = build_runtime(sched, silos=2)
    scaler, _ = build_autoscaler(
        runtime,
        scale_up_utilization=0.70,
        scale_up_cycles=1,
        cooldown_seconds=0.0,
    )
    fake_loads(scaler, {"silo-1": 0.95, "silo-2": 0.05})  # mean 0.5

    assert sched.run_until_complete(scaler.run_cycle()) is None


def test_sustained_idle_drains_least_loaded_silo(sched):
    runtime = build_runtime(sched, silos=2)

    async def activate():
        await runtime.ref("Echo", "e1").ping()

    sched.run_until_complete(activate())
    scaler, _ = build_autoscaler(
        runtime,
        pool=[],
        scale_down_utilization=0.25,
        scale_down_cycles=3,
        cooldown_seconds=0.0,
    )
    fake_loads(scaler, {"silo-1": 0.10, "silo-2": 0.02})

    async def main():
        events = [await scaler.run_cycle() for _ in range(3)]
        return events

    events = sched.run_until_complete(main())
    assert events[0] is None and events[1] is None
    down = events[2]
    assert down is not None and down.direction == "down"
    assert down.silo_id == "silo-2"
    assert down.reason == "idle"
    # The drained silo's spec returns to the pool for future scale-ups.
    assert [spec.silo_id for spec in scaler.pool] == ["silo-2"]
    assert runtime.silo("silo-1").activation_count == 1
    assert scaler.scale_downs == 1


def test_min_silos_floor_blocks_scale_down(sched):
    runtime = build_runtime(sched, silos=1)
    scaler, _ = build_autoscaler(
        runtime, min_silos=1, scale_down_cycles=1, cooldown_seconds=0.0
    )
    fake_loads(scaler, {"silo-1": 0.0})

    async def main():
        for _ in range(4):
            assert await scaler.run_cycle() is None

    sched.run_until_complete(main())
    assert scaler.scale_downs == 0


def test_firing_rule_resets_idle_streak(sched):
    runtime = build_runtime(sched, silos=2)
    scaler, monitor = build_autoscaler(
        runtime,
        pool=[],
        max_silos=2,
        scale_down_cycles=2,
        cooldown_seconds=0.0,
    )
    fake_loads(scaler, {"silo-1": 0.0, "silo-2": 0.0})

    async def main():
        assert await scaler.run_cycle() is None  # idle streak 1
        monitor.firing = ["mailbox-backlog"]
        await scaler.run_cycle()  # firing (no capacity): resets idle streak
        monitor.firing = []
        assert await scaler.run_cycle() is None  # idle streak 1 again
        return await scaler.run_cycle()  # idle streak 2: drains

    event = sched.run_until_complete(main())
    assert event is not None and event.direction == "down"


def test_silo_seconds_accrue_per_live_silo(sched):
    runtime = build_runtime(sched, silos=3)
    # min_silos=3 so the all-idle cluster cannot shrink mid-test.
    scaler, _ = build_autoscaler(runtime, pool=[], interval=0.5, min_silos=3)

    async def main():
        for _ in range(4):
            await scaler.run_cycle()

    sched.run_until_complete(main())
    assert scaler.silo_seconds == pytest.approx(3 * 0.5 * 4)


def test_attach_detach_lifecycle(sched):
    runtime = build_runtime(sched)
    scaler, monitor = build_autoscaler(runtime, interval=1.0, cooldown_seconds=0.0)
    monitor.firing = ["mailbox-backlog"]
    scaler.attach(sched)
    with pytest.raises(RuntimeError):
        scaler.attach(sched)

    async def idle(seconds):
        await sched.sleep(seconds)

    sched.run_until_complete(idle(2.5))
    assert scaler.cycles == 2
    assert scaler.scale_ups >= 1
    scaler.detach()
    cycles = scaler.cycles
    sched.run_until_complete(idle(3.0))
    assert scaler.cycles == cycles
    scaler.detach()  # idempotent
