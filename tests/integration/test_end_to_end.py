"""Cross-module integration tests: platform + storage + cluster lifecycle."""

import pytest

from repro.aodb import AodbDatabase
from repro.errors import ThrottlingError
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig, WritePolicy
from repro.shm import ShmPlatform, channel_id_for, sensor_id_for
from repro.storage import InMemoryKVStore, ProvisionedKVStore


def make_platform(sched, store=None, **config_kwargs):
    config_kwargs.setdefault("default_method_cost", 0.0)
    config_kwargs.setdefault("activation_cost", 0.0)
    config = RuntimeConfig(**config_kwargs)
    network = Network(sched, lan=ConstantLatency(0.0005))
    runtime = AodbRuntime(
        sched, config=config, network=network, grain_storage=store
    )
    runtime.add_silo("silo-1", cores=4)
    runtime.add_silo("silo-2", cores=4)
    return ShmPlatform(AodbDatabase(runtime))


def ingest_batches(sensor_id, start, count=10):
    return {
        channel_id_for(sensor_id, c): [
            (start + i * 0.1, float(c + i)) for i in range(count)
        ]
        for c in (0, 1)
    }


def test_platform_state_survives_full_cluster_restart(sched=None):
    """Deactivate every actor (silo shutdown), then serve queries again."""
    sched = Scheduler()
    store = InMemoryKVStore()
    platform = make_platform(sched, store=store)
    runtime = platform.runtime

    async def main():
        await platform.provision(total_sensors=4)
        sensor_id = sensor_id_for("org-0", 0)
        await platform.ingest(sensor_id, ingest_batches(sensor_id, 0.0))
        await sched.sleep(1)
        # Stop both silos: all durable state flushes.
        await runtime.shutdown_silo("silo-1")
        await runtime.shutdown_silo("silo-2")
        assert runtime.total_activations() == 0
        # Bring a fresh silo up; virtual actors reactivate from storage.
        runtime.add_silo("silo-3", cores=4)
        raw = await platform.raw_range(channel_id_for(sensor_id, 0), 0.0, 10.0)
        summary = await platform.organization_summary("org-0")
        return raw, summary

    raw, summary = sched.run_until_complete(main())
    assert len(raw) == 10  # the channel window was persisted and restored
    assert summary["sensors"] == 4


def test_throttled_storage_delays_but_preserves_writes():
    """A DynamoDB-like store in delay mode absorbs a flush burst slowly."""
    sched = Scheduler()
    store = ProvisionedKVStore(
        sched, write_capacity_units=10, on_overload="delay",
        latency=ConstantLatency(0.001),
    )
    platform = make_platform(sched, store=store)

    async def main():
        await platform.provision(total_sensors=10)
        before = sched.now
        await platform.runtime.shutdown_silo("silo-1")
        await platform.runtime.shutdown_silo("silo-2")
        return sched.now - before

    elapsed = sched.run_until_complete(main())
    # 10 sensors => dozens of durable actors flushing through 10 WCU/s.
    assert store.writes >= 30
    assert elapsed > 1.0  # the flush was genuinely throttled


def test_throttled_storage_raises_in_throttle_mode():
    sched = Scheduler()
    store = ProvisionedKVStore(
        sched, write_capacity_units=2, on_overload="throttle",
        latency=ConstantLatency(0.001),
    )
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config, grain_storage=store)
    runtime.add_silo("s1", cores=2)

    from repro.runtime import Actor

    class Durable(Actor):
        durable = True
        write_policy = WritePolicy.WRITE_THROUGH

        async def put(self, v):
            self.state["v"] = v

    runtime.register_actor(Durable)

    async def main():
        # Burst capacity 2: the third write-through must surface the error.
        await runtime.ref("Durable", "a").put(1)
        await runtime.ref("Durable", "b").put(1)
        with pytest.raises(ThrottlingError):
            await runtime.ref("Durable", "c").put(1)

    sched.run_until_complete(main())


def test_ingestion_continues_while_idle_collection_runs():
    sched = Scheduler()
    platform = make_platform(
        sched, idle_timeout=5.0, collection_interval=2.0
    )
    platform.runtime.start()

    async def main():
        await platform.provision(total_sensors=2)
        hot = sensor_id_for("org-0", 0)
        # Only sensor 0 stays hot; sensor 1's subtree idles out.
        for wave in range(20):
            await platform.ingest(hot, ingest_batches(hot, float(wave)))
            await sched.sleep(1.0)
        collected = platform.runtime.stats.activations_collected
        # The cold subtree reactivates transparently on demand.
        cold_channel = channel_id_for(sensor_id_for("org-0", 1), 0)
        raw = await platform.raw_range(cold_channel, 0.0, 100.0)
        return collected, raw

    collected, raw = sched.run_until_complete(main())
    assert collected > 0
    assert raw == []  # never ingested, but reachable


def test_cross_silo_alert_flow():
    """Alerts hop from channel (silo A) to organization (silo B)."""
    sched = Scheduler()
    platform = make_platform(sched)
    runtime = platform.runtime
    from repro.runtime import ActorKey

    rule = {
        "rule_id": "r", "high": 5.0, "low": None, "channel_id": None,
        "sensor_type": None, "cooldown_seconds": 0.0, "message": "hot",
    }

    async def main():
        runtime.pinned_placement.pin(ActorKey("Organization", "org-0"), "silo-1")
        runtime.pinned_placement.pin_prefix("Sensor/org-0/", "silo-2")
        await platform.provision(total_sensors=1, sensors_per_org=100)
        sensor_id = sensor_id_for("org-0", 0)
        org_silo = runtime.directory.lookup(ActorKey("Organization", "org-0"))
        sensor_silo = runtime.directory.lookup(ActorKey("Sensor", sensor_id))
        await runtime.ref("Organization", "org-0").add_alert_rule("r", high=5.0)
        await sched.sleep(0.1)
        await platform.ingest(
            sensor_id,
            {channel_id_for(sensor_id, 0): [(0.0, 10.0)]},
        )
        await sched.sleep(1)
        alerts = await platform.alerts("org-0")
        return org_silo, sensor_silo, alerts

    org_silo, sensor_silo, alerts = sched.run_until_complete(main())
    assert org_silo != sensor_silo  # genuinely cross-silo
    assert len(alerts) == 1
    assert alerts[0]["value"] == 10.0


def test_query_layer_spans_case_study_actors():
    """AODB queries work against the SHM actors (extent scan + fan-out)."""
    sched = Scheduler()
    platform = make_platform(sched)

    async def main():
        await platform.provision(total_sensors=5)
        for index in range(5):
            sensor_id = sensor_id_for("org-0", index)
            await platform.ingest(
                sensor_id, {channel_id_for(sensor_id, 0): [(0.0, float(index))]}
            )
        rows = await (
            platform.db.query("PhysicalSensorChannel")
            .call("latest")
            .filter_values(lambda v: v is not None and v[1] >= 3.0)
            .run()
        )
        return rows

    rows = sched.run_until_complete(main())
    assert len(rows) == 2
    assert all(row.value[1] >= 3.0 for row in rows)
