"""The §4.4 constraint-enforcement principle, in all three flavours."""

import pytest

from .conftest import seed_chain


def test_transactional_sale_moves_cow_atomically(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Buyer Farm")
        ok = await platform.sell_cow_transactional("cow-1", "farm-1", "farm-2", 50.0)
        herds = (
            await platform.runtime.ref("Farmer", "farm-1").herd(),
            await platform.runtime.ref("Farmer", "farm-2").herd(),
        )
        owner_index = await platform.cows_of("farm-2")
        cow = await platform.runtime.ref("Cow", "cow-1").describe()
        return ok, herds, owner_index, cow

    ok, herds, owner_index, cow = sched.run_until_complete(main())
    assert ok is True
    assert herds == (["cow-2"], ["cow-1"])
    assert owner_index == ["cow-1"]
    assert cow["owner_id"] == "farm-2"


def test_transactional_sale_rolls_back_on_bad_seller(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Buyer Farm")
        # farm-2 does not own cow-1: step 1 fails, nothing changes.
        ok = await platform.sell_cow_transactional("cow-1", "farm-2", "farm-1", 50.0)
        return ok, await platform.runtime.ref("Farmer", "farm-1").herd()

    ok, herd = sched.run_until_complete(main())
    assert ok is False or herd == ["cow-1", "cow-2"]
    assert "cow-1" in herd


def test_transactional_sale_rollback_restores_intermediate_updates(sched, platform):
    async def main():
        await seed_chain(platform)
        # farm-3 exists but the cow update will fail: cow-9 was never
        # registered, so set_owner raises (no owner => not alive).
        await platform.register_farmer("farm-3", "Buyer")
        from repro.errors import LifecycleError

        try:
            async with platform.db.transaction() as txn:
                await txn.call("Farmer", "farm-1", "remove_cow", "cow-1")
                await txn.call("Farmer", "farm-3", "add_cow", "cow-1")
                await txn.call("Cow", "cow-9", "set_owner", "farm-3", 1.0)
        except LifecycleError:
            pass
        return (
            await platform.runtime.ref("Farmer", "farm-1").herd(),
            await platform.runtime.ref("Farmer", "farm-3").herd(),
        )

    farm1, farm3 = sched.run_until_complete(main())
    assert "cow-1" in farm1
    assert farm3 == []


def test_workflow_sale_applies_all_steps(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Buyer Farm")
        outcome = await platform.sell_cow_workflow("cow-1", "farm-1", "farm-2", 60.0)
        return outcome, await platform.runtime.ref("Farmer", "farm-2").herd()

    outcome, herd = sched.run_until_complete(main())
    assert outcome.succeeded
    assert outcome.applied_steps == [
        "remove-from-seller",
        "add-to-buyer",
        "update-cow",
    ]
    assert herd == ["cow-1"]


def test_workflow_sale_compensates_on_failure(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Buyer Farm")
        # Slaughter the cow first: set_owner (step 3) will fail.
        await platform.runtime.ref("Slaughterhouse", "sh-1").slaughter_cow(
            "cow-2", timestamp=10.0
        )
        await sched.sleep(1)  # herd update drains
        outcome = await platform.sell_cow_workflow("cow-1", "farm-1", "farm-2", 60.0)

        # Sell cow-1? No - use the slaughtered cow-2 for the failing sale:
        outcome = await platform.sell_cow_workflow("cow-2", "farm-1", "farm-2", 61.0)
        return outcome

    outcome = sched.run_until_complete(main())
    assert not outcome.succeeded
    assert outcome.failed_step in ("remove-from-seller", "update-cow")


def test_concurrent_transactional_sales_serialize(sched, platform):
    """Two buyers race for the same cow; exactly one sale succeeds."""

    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Buyer A")
        await platform.register_farmer("farm-3", "Buyer B")
        results = await sched.gather(
            [
                sched.spawn(
                    platform.sell_cow_transactional("cow-1", "farm-1", "farm-2", 1.0)
                ),
                sched.spawn(
                    platform.sell_cow_transactional("cow-1", "farm-1", "farm-3", 1.0)
                ),
            ]
        )
        owner = (await platform.runtime.ref("Cow", "cow-1").describe())["owner_id"]
        herd2 = await platform.runtime.ref("Farmer", "farm-2").herd()
        herd3 = await platform.runtime.ref("Farmer", "farm-3").herd()
        return results, owner, herd2, herd3

    results, owner, herd2, herd3 = sched.run_until_complete(main())
    assert sorted(results) == [False, True]
    # Exactly one herd has the cow, matching the cow's own owner record.
    assert (owner == "farm-2") == ("cow-1" in herd2)
    assert (owner == "farm-3") == ("cow-1" in herd3)
    assert ("cow-1" in herd2) != ("cow-1" in herd3)
