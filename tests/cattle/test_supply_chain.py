"""Supply-chain tests (model A): slaughter, delivery, retail, tracing."""

import pytest

from repro.cattle import build_product_trace_graph, origin_farms, summarize_trace
from repro.errors import LifecycleError, UnknownEntityError

from .conftest import seed_chain


async def run_full_chain(platform, sched):
    """Farm → slaughter → delivery → retail → product → sale."""
    await seed_chain(platform)
    sh = platform.runtime.ref("Slaughterhouse", "sh-1")
    cut_ids = await sh.slaughter_cow("cow-1", timestamp=100.0, cuts=4)
    distributor = platform.runtime.ref("Distributor", "dist-1")
    delivery_id = await distributor.create_delivery(cut_ids, "sh-1", "ret-1")
    delivery = platform.runtime.ref("Delivery", delivery_id)
    await delivery.start(timestamp=110.0)
    await delivery.complete(timestamp=120.0)
    await sched.sleep(1)  # receive_cuts is one-way
    retailer = platform.runtime.ref("Retailer", "ret-1")
    product_id = await retailer.create_product(cut_ids[:2], timestamp=130.0)
    await retailer.sell_product(product_id, timestamp=140.0)
    return cut_ids, delivery_id, product_id


def test_slaughter_creates_cuts_and_updates_herd(sched, platform):
    async def main():
        await seed_chain(platform)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0, cuts=3)
        await sched.sleep(1)  # herd removal is one-way
        herd = await platform.runtime.ref("Farmer", "farm-1").herd()
        statuses = await platform.cows_with_status("slaughtered")
        return cut_ids, herd, statuses

    cut_ids, herd, statuses = sched.run_until_complete(main())
    assert cut_ids == ["cow-1/cut-0", "cow-1/cut-1", "cow-1/cut-2"]
    assert herd == ["cow-2"]
    assert statuses == ["cow-1"]


def test_cow_cannot_be_slaughtered_twice(sched, platform):
    async def main():
        await seed_chain(platform)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        await sh.slaughter_cow("cow-1", timestamp=10.0)
        with pytest.raises(LifecycleError):
            await sh.slaughter_cow("cow-1", timestamp=11.0)

    sched.run_until_complete(main())


def test_incoming_cow_info_service(sched, platform):
    async def main():
        await seed_chain(platform)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        return await sh.incoming_cow_info("cow-1")

    info = sched.run_until_complete(main())
    assert info["cow"]["owner_id"] == "farm-1"
    assert info["history"][0]["kind"] == "birth"


def test_full_chain_and_cut_itinerary(sched, platform):
    async def main():
        cut_ids, delivery_id, product_id = await run_full_chain(platform, sched)
        cut_trace = await platform.runtime.ref("MeatCut", cut_ids[0]).trace()
        return cut_ids, delivery_id, product_id, cut_trace

    cut_ids, delivery_id, product_id, cut_trace = sched.run_until_complete(main())
    kinds = [leg["kind"] for leg in cut_trace["itinerary"]]
    assert kinds == [
        "transformation",
        "delivery_start",
        "delivery_end",
        "transformation",
    ]
    assert cut_trace["status"] == "transformed"
    assert cut_trace["product_ids"] == [product_id]


def test_custody_index_tracks_holders(sched, platform):
    async def main():
        await seed_chain(platform)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0, cuts=2)
        at_sh = await platform.cuts_held_by("sh-1")
        distributor = platform.runtime.ref("Distributor", "dist-1")
        delivery_id = await distributor.create_delivery(cut_ids, "sh-1", "ret-1")
        await platform.runtime.ref("Delivery", delivery_id).start(11.0)
        in_transit = await platform.cuts_held_by("dist-1")
        return at_sh, in_transit

    at_sh, in_transit = sched.run_until_complete(main())
    assert len(at_sh) == 2
    assert sorted(in_transit) == sorted(at_sh)


def test_delivery_lifecycle_enforced(sched, platform):
    async def main():
        await seed_chain(platform)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0)
        distributor = platform.runtime.ref("Distributor", "dist-1")
        delivery_id = await distributor.create_delivery(cut_ids, "sh-1", "ret-1")
        delivery = platform.runtime.ref("Delivery", delivery_id)
        with pytest.raises(LifecycleError):
            await delivery.complete(11.0)  # not started
        await delivery.start(11.0)
        with pytest.raises(LifecycleError):
            await delivery.start(12.0)  # already in transit
        await delivery.complete(13.0)
        return await delivery.describe()

    description = sched.run_until_complete(main())
    assert description["status"] == "completed"
    assert description["started_at"] == 11.0


def test_retailer_requires_stock_for_products(sched, platform):
    async def main():
        await seed_chain(platform)
        retailer = platform.runtime.ref("Retailer", "ret-1")
        with pytest.raises(UnknownEntityError):
            await retailer.create_product(["phantom-cut"], timestamp=1.0)

    sched.run_until_complete(main())


def test_product_cannot_sell_twice(sched, platform):
    async def main():
        _, _, product_id = await run_full_chain(platform, sched)
        retailer = platform.runtime.ref("Retailer", "ret-1")
        with pytest.raises(LifecycleError):
            await retailer.sell_product(product_id, timestamp=999.0)

    sched.run_until_complete(main())


def test_consumer_trace_reaches_farm(sched, platform):
    async def main():
        _, _, product_id = await run_full_chain(platform, sched)
        return await platform.trace_product(product_id)

    trace = sched.run_until_complete(main())
    assert trace["retailer_id"] == "ret-1"
    assert len(trace["cuts"]) == 2
    assert all(cut["cow_id"] == "cow-1" for cut in trace["cuts"])
    assert trace["sold_at"] == 140.0


def test_trace_graph_assembly(sched, platform):
    async def main():
        _, delivery_id, product_id = await run_full_chain(platform, sched)
        graph = await build_product_trace_graph(platform.db, product_id)
        return graph, product_id, delivery_id

    graph, product_id, delivery_id = sched.run_until_complete(main())
    assert origin_farms(graph, product_id) == ["farm-1"]
    kinds = {graph.nodes[n]["kind"] for n in graph.nodes}
    assert kinds == {
        "farmer", "cow", "slaughterhouse", "cut", "delivery", "retailer", "product"
    }
    summary = summarize_trace(graph, product_id)
    assert summary["entities"]["cut"] == 2
    assert summary["entities"]["cow"] == 1


def test_transformed_cut_cannot_restart_transit(sched, platform):
    async def main():
        cut_ids, _, _ = await run_full_chain(platform, sched)
        cut = platform.runtime.ref("MeatCut", cut_ids[0])
        with pytest.raises(LifecycleError):
            await cut.start_transit("d2", "dist-1", 999.0)

    sched.run_until_complete(main())
