"""Tracking tests: collar ingestion, trajectories, geo-fencing, herds."""

import pytest

from repro.cattle import rectangle_fence
from repro.errors import LifecycleError, UnknownEntityError

from .conftest import seed_chain


def reading(ts, lat, lon, activity=0.5):
    return {
        "timestamp": ts,
        "latitude": lat,
        "longitude": lon,
        "activity": activity,
        "temperature": 38.5,
    }


def test_register_cow_updates_both_sides(sched, platform):
    async def main():
        await seed_chain(platform)
        herd = await platform.runtime.ref("Farmer", "farm-1").herd()
        owner = (await platform.runtime.ref("Cow", "cow-1").describe())["owner_id"]
        return herd, owner

    herd, owner = sched.run_until_complete(main())
    assert herd == ["cow-1", "cow-2"]
    assert owner == "farm-1"


def test_double_registration_rejected(sched, platform):
    async def main():
        await seed_chain(platform)
        with pytest.raises(LifecycleError):
            await platform.register_cow("cow-1", "farm-1")

    sched.run_until_complete(main())


def test_collar_readings_build_trajectory(sched, platform):
    async def main():
        await seed_chain(platform)
        cow = platform.runtime.ref("Cow", "cow-1")
        for i in range(5):
            await cow.record_reading(reading(float(i), 55.0 + i * 0.001, 11.0))
        location = await cow.current_location()
        trajectory = await cow.trajectory(1.0, 4.0)
        travelled = await cow.travelled_meters()
        return location, trajectory, travelled

    location, trajectory, travelled = sched.run_until_complete(main())
    assert location["timestamp"] == 4.0
    assert [r["timestamp"] for r in trajectory] == [1.0, 2.0, 3.0]
    assert travelled == pytest.approx(4 * 0.001 * 111_200, rel=0.02)


def test_geofence_breach_reported_to_farmer(sched, platform):
    async def main():
        await seed_chain(platform)
        farmer = platform.runtime.ref("Farmer", "farm-1")
        fence = rectangle_fence("north-pasture", 55.0, 11.0, 55.1, 11.1)
        await farmer.define_fence(fence.as_dict())
        await farmer.assign_fence("cow-1", "north-pasture")
        cow = platform.runtime.ref("Cow", "cow-1")
        inside = await cow.record_reading(reading(0.0, 55.05, 11.05))
        outside = await cow.record_reading(reading(1.0, 55.5, 11.05))
        await sched.sleep(1)  # breach report is one-way
        breaches = await farmer.breaches()
        return inside, outside, breaches

    inside, outside, breaches = sched.run_until_complete(main())
    assert inside["inside_fence"] is True
    assert outside["inside_fence"] is False
    assert len(breaches) == 1
    assert breaches[0]["cow_id"] == "cow-1"
    assert breaches[0]["fence"] == "north-pasture"


def test_assign_fence_requires_ownership(sched, platform):
    async def main():
        await seed_chain(platform)
        farmer = platform.runtime.ref("Farmer", "farm-1")
        fence = rectangle_fence("p", 0, 0, 1, 1)
        await farmer.define_fence(fence.as_dict())
        with pytest.raises(UnknownEntityError):
            await farmer.assign_fence("not-my-cow", "p")
        with pytest.raises(UnknownEntityError):
            await farmer.assign_fence("cow-1", "no-such-fence")

    sched.run_until_complete(main())


def test_herd_locations_fan_out(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.runtime.ref("Cow", "cow-1").record_reading(
            reading(0.0, 55.0, 11.0)
        )
        return await platform.runtime.ref("Farmer", "farm-1").herd_locations()

    locations = sched.run_until_complete(main())
    assert locations["cow-1"]["latitude"] == 55.0
    assert locations["cow-2"] is None  # no readings yet


def test_owner_index_supports_queries(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Other Farm")
        await platform.register_cow("cow-3", "farm-2")
        return await platform.cows_of("farm-1"), await platform.cows_of("farm-2")

    farm1, farm2 = sched.run_until_complete(main())
    assert farm1 == ["cow-1", "cow-2"]
    assert farm2 == ["cow-3"]


def test_reading_rejected_after_slaughter(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.runtime.ref("Slaughterhouse", "sh-1").slaughter_cow(
            "cow-1", timestamp=10.0
        )
        with pytest.raises(LifecycleError):
            await platform.runtime.ref("Cow", "cow-1").record_reading(
                reading(11.0, 55.0, 11.0)
            )

    sched.run_until_complete(main())
