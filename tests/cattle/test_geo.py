"""Unit tests for geospatial primitives."""

import pytest

from repro.cattle import (
    GeoFence,
    haversine_meters,
    rectangle_fence,
    trajectory_length_meters,
)


def test_haversine_zero_distance():
    assert haversine_meters(55.0, 11.0, 55.0, 11.0) == 0.0


def test_haversine_known_distance():
    # Copenhagen (55.676, 12.568) to Campinas (-22.907, -47.063): ~9,900 km.
    distance = haversine_meters(55.676, 12.568, -22.907, -47.063)
    assert distance == pytest.approx(9_900_000, rel=0.05)


def test_haversine_one_degree_latitude():
    # One degree of latitude is ~111.2 km everywhere.
    distance = haversine_meters(0.0, 0.0, 1.0, 0.0)
    assert distance == pytest.approx(111_200, rel=0.01)


def test_haversine_symmetry():
    a = haversine_meters(55.0, 11.0, 56.0, 12.0)
    b = haversine_meters(56.0, 12.0, 55.0, 11.0)
    assert a == pytest.approx(b)


def test_rectangle_fence_contains():
    fence = rectangle_fence("pasture", 55.0, 11.0, 56.0, 12.0)
    assert fence.contains(55.5, 11.5)
    assert not fence.contains(54.9, 11.5)
    assert not fence.contains(55.5, 12.1)


def test_rectangle_fence_validation():
    with pytest.raises(ValueError):
        rectangle_fence("bad", 56.0, 11.0, 55.0, 12.0)


def test_fence_needs_three_vertices():
    with pytest.raises(ValueError):
        GeoFence("line", ((0.0, 0.0), (1.0, 1.0)))


def test_triangle_fence():
    fence = GeoFence("tri", ((0.0, 0.0), (0.0, 10.0), (10.0, 5.0)))
    assert fence.contains(2.0, 5.0)
    assert not fence.contains(9.0, 1.0)


def test_fence_vertex_counts_as_inside():
    fence = rectangle_fence("p", 0.0, 0.0, 1.0, 1.0)
    assert fence.contains(0.0, 0.0)


def test_fence_round_trip_dict():
    fence = rectangle_fence("p", 0.0, 0.0, 1.0, 1.0)
    rebuilt = GeoFence.from_dict(fence.as_dict())
    assert rebuilt == fence


def test_trajectory_length():
    points = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]
    assert trajectory_length_meters(points) == pytest.approx(2 * 111_200, rel=0.01)
    assert trajectory_length_meters([]) == 0.0
    assert trajectory_length_meters([(1.0, 1.0)]) == 0.0
