"""Model B (Figure 5): versioned non-actor objects for meat cuts/products."""

import pytest

from repro.cattle import new_version
from repro.errors import LifecycleError, UnknownEntityError

from .conftest import seed_chain


async def seed_model_b(platform):
    await seed_chain(platform)
    await platform.runtime.ref("SlaughterhouseB", "shb-1").setup("Crown B")
    await platform.runtime.ref("DistributorB", "distb-1").setup("Logistics B")
    await platform.runtime.ref("RetailerB", "retb-1").setup("Mart B")


def test_new_version_chains_provenance():
    first = new_version("cut-1", "sh", 1.0, {"status": "fresh"}, None)
    second = new_version("cut-1", "dist", 2.0, first["payload"], first)
    assert first["version"] == 1
    assert second["version"] == 2
    assert [link["holder"] for link in second["chain"]] == ["sh", "dist"]
    # Payload is copied, not shared.
    second["payload"]["status"] = "changed"
    assert first["payload"]["status"] == "fresh"


def test_model_b_full_chain(sched, platform):
    async def main():
        await seed_model_b(platform)
        sh = platform.runtime.ref("SlaughterhouseB", "shb-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0, cuts=3)
        await sh.ship_cuts(cut_ids, "distb-1", timestamp=20.0)
        dist = platform.runtime.ref("DistributorB", "distb-1")
        in_transit = await dist.held_entities()
        await dist.deliver_cuts(cut_ids, "retb-1", timestamp=30.0)
        ret = platform.runtime.ref("RetailerB", "retb-1")
        product_id = await ret.create_product(cut_ids[:2], timestamp=40.0)
        await ret.sell_product(product_id, timestamp=50.0)
        trace = await ret.trace_product(product_id)
        return cut_ids, in_transit, product_id, trace

    cut_ids, in_transit, product_id, trace = sched.run_until_complete(main())
    assert sorted(in_transit) == sorted(cut_ids)
    assert trace["sold_at"] == 50.0
    assert len(trace["cuts"]) == 2
    # Each embedded cut version carries its full holder chain locally.
    chains = [[link["holder"] for link in cut["chain"]] for cut in trace["cuts"]]
    assert all(chain == ["shb-1", "distb-1", "retb-1"] for chain in chains)


def test_model_b_local_info_needs_no_remote_calls(sched, platform):
    async def main():
        await seed_model_b(platform)
        sh = platform.runtime.ref("SlaughterhouseB", "shb-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0, cuts=1)
        before = platform.runtime.stats.asks
        info = await sh.local_info(cut_ids[0])
        after = platform.runtime.stats.asks
        return info, after - before

    info, asks = sched.run_until_complete(main())
    assert info["payload"]["cow_id"] == "cow-1"
    assert asks == 1  # only the local_info call itself


def test_model_b_release_requires_holding(sched, platform):
    async def main():
        await seed_model_b(platform)
        sh = platform.runtime.ref("SlaughterhouseB", "shb-1")
        with pytest.raises(UnknownEntityError):
            await sh.ship_cuts(["phantom"], "distb-1", 1.0)

    sched.run_until_complete(main())


def test_model_b_version_moves_not_copies_current(sched, platform):
    """After shipping, the slaughterhouse no longer holds the version."""

    async def main():
        await seed_model_b(platform)
        sh = platform.runtime.ref("SlaughterhouseB", "shb-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0, cuts=1)
        await sh.ship_cuts(cut_ids, "distb-1", timestamp=20.0)
        with pytest.raises(UnknownEntityError):
            await sh.local_info(cut_ids[0])
        return await sh.held_entities()

    held = sched.run_until_complete(main())
    assert held == []


def test_model_b_double_sale_rejected(sched, platform):
    async def main():
        await seed_model_b(platform)
        sh = platform.runtime.ref("SlaughterhouseB", "shb-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=10.0, cuts=1)
        await sh.ship_cuts(cut_ids, "distb-1", 20.0)
        await platform.runtime.ref("DistributorB", "distb-1").deliver_cuts(
            cut_ids, "retb-1", 30.0
        )
        ret = platform.runtime.ref("RetailerB", "retb-1")
        product_id = await ret.create_product(cut_ids, timestamp=40.0)
        await ret.sell_product(product_id, 50.0)
        with pytest.raises(LifecycleError):
            await ret.sell_product(product_id, 51.0)

    sched.run_until_complete(main())


def test_models_a_and_b_coexist(sched, platform):
    """Both representations run in the same AODB (the §4.3 ablation setup)."""

    async def main():
        await seed_model_b(platform)
        # Model A for cow-1, model B for cow-2.
        a_cuts = await platform.runtime.ref("Slaughterhouse", "sh-1").slaughter_cow(
            "cow-1", timestamp=10.0, cuts=2
        )
        b_cuts = await platform.runtime.ref("SlaughterhouseB", "shb-1").slaughter_cow(
            "cow-2", timestamp=10.0, cuts=2
        )
        a_trace = await platform.runtime.ref("MeatCut", a_cuts[0]).trace()
        b_info = await platform.runtime.ref("SlaughterhouseB", "shb-1").local_info(
            b_cuts[0]
        )
        return a_trace, b_info

    a_trace, b_info = sched.run_until_complete(main())
    assert a_trace["cow_id"] == "cow-1"
    assert b_info["payload"]["cow_id"] == "cow-2"
