"""Tests for the EPCIS event-document export."""

import pytest

from repro.cattle import export_product_document

from .conftest import seed_chain


async def full_chain_product(platform, sched):
    await seed_chain(platform)
    sh = platform.runtime.ref("Slaughterhouse", "sh-1")
    cut_ids = await sh.slaughter_cow("cow-1", timestamp=100.0, cuts=2)
    dist = platform.runtime.ref("Distributor", "dist-1")
    delivery_id = await dist.create_delivery(cut_ids, "sh-1", "ret-1")
    delivery = platform.runtime.ref("Delivery", delivery_id)
    await delivery.start(timestamp=110.0)
    await delivery.complete(timestamp=120.0)
    await sched.sleep(1)
    retailer = platform.runtime.ref("Retailer", "ret-1")
    product_id = await retailer.create_product(cut_ids, timestamp=130.0)
    await retailer.sell_product(product_id, timestamp=140.0)
    return product_id


def test_document_shape_and_chronology(sched, platform):
    async def main():
        product_id = await full_chain_product(platform, sched)
        return await export_product_document(platform.db, product_id)

    document = sched.run_until_complete(main())
    assert document["type"] == "EPCISDocument"
    assert document["schemaVersion"] == "2.0"
    events = document["epcisBody"]["eventList"]
    times = [event["eventTime"] for event in events]
    assert times == sorted(times)
    # One commissioning (birth), one per-cow slaughter observation, two
    # slaughter transformations (one per cut), two pickup + two drop-off
    # aggregations, two retail transformations, one sale.
    kinds = [event["type"] for event in events]
    assert kinds.count("TransformationEvent") == 4
    assert kinds.count("AggregationEvent") == 4
    assert kinds.count("ObjectEvent") == 3


def test_business_steps_cover_the_chain(sched, platform):
    async def main():
        product_id = await full_chain_product(platform, sched)
        return await export_product_document(platform.db, product_id)

    document = sched.run_until_complete(main())
    events = document["epcisBody"]["eventList"]
    steps = {event["bizStep"].rsplit(":", 1)[-1] for event in events}
    assert {
        "commissioning",
        "slaughtering",
        "transporting",
        "receiving",
        "retail_selling",
    } <= steps


def test_transformation_events_link_inputs_to_outputs(sched, platform):
    async def main():
        product_id = await full_chain_product(platform, sched)
        document = await export_product_document(platform.db, product_id)
        return product_id, document

    product_id, document = sched.run_until_complete(main())
    events = document["epcisBody"]["eventList"]
    slaughter = [
        e for e in events
        if e["type"] == "TransformationEvent" and e["bizStep"].endswith("slaughtering")
    ]
    assert all(e["inputEPCList"] == ["cow-1"] for e in slaughter)
    retail = [
        e for e in events
        if e["type"] == "TransformationEvent" and e["bizStep"].endswith("commissioning")
    ]
    assert all(product_id in e["outputEPCList"] for e in retail)


def test_ownership_transfer_appears_as_shipping_event(sched, platform):
    async def main():
        await seed_chain(platform)
        await platform.register_farmer("farm-2", "Buyer")
        await platform.sell_cow_transactional("cow-1", "farm-1", "farm-2", 50.0)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=100.0, cuts=1)
        dist = platform.runtime.ref("Distributor", "dist-1")
        delivery_id = await dist.create_delivery(cut_ids, "sh-1", "ret-1")
        delivery = platform.runtime.ref("Delivery", delivery_id)
        await delivery.start(110.0)
        await delivery.complete(120.0)
        await sched.sleep(1)
        retailer = platform.runtime.ref("Retailer", "ret-1")
        product_id = await retailer.create_product(cut_ids, timestamp=130.0)
        return await export_product_document(platform.db, product_id)

    document = sched.run_until_complete(main())
    shipping = [
        e
        for e in document["epcisBody"]["eventList"]
        if e["bizStep"].endswith("shipping")
    ]
    assert len(shipping) == 1
    assert shipping[0]["source"] == "farm-1"
    assert shipping[0]["destination"] == "farm-2"


def test_unsold_product_has_no_sale_event(sched, platform):
    async def main():
        await seed_chain(platform)
        sh = platform.runtime.ref("Slaughterhouse", "sh-1")
        cut_ids = await sh.slaughter_cow("cow-1", timestamp=100.0, cuts=1)
        dist = platform.runtime.ref("Distributor", "dist-1")
        delivery_id = await dist.create_delivery(cut_ids, "sh-1", "ret-1")
        delivery = platform.runtime.ref("Delivery", delivery_id)
        await delivery.start(110.0)
        await delivery.complete(120.0)
        await sched.sleep(1)
        retailer = platform.runtime.ref("Retailer", "ret-1")
        product_id = await retailer.create_product(cut_ids, timestamp=130.0)
        return await export_product_document(platform.db, product_id)

    document = sched.run_until_complete(main())
    steps = [e["bizStep"] for e in document["epcisBody"]["eventList"]]
    assert not any(step.endswith("retail_selling") for step in steps)
