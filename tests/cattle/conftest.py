"""Shared fixtures for cattle platform tests."""

import pytest

from repro.aodb import AodbDatabase
from repro.cattle import CattlePlatform
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def platform(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, network=network)
    runtime.add_silo("silo-1", cores=4)
    db = AodbDatabase(runtime)
    return CattlePlatform(db)


async def seed_chain(platform):
    """A small complete chain: 1 farmer, 2 cows, full downstream parties."""
    await platform.register_farmer("farm-1", "Jensen Farm")
    await platform.register_cow("cow-1", "farm-1", born_at=0.0)
    await platform.register_cow("cow-2", "farm-1", born_at=1.0)
    await platform.register_slaughterhouse("sh-1", "Danish Crown")
    await platform.register_distributor("dist-1", "Nordic Logistics")
    await platform.register_retailer("ret-1", "SuperMart")
