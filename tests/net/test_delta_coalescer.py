"""Unit tests for the view-delta coalescer: windows, chains, failures."""

import pytest

from repro.kernel import Scheduler
from repro.net.deltas import DeltaCoalescer


class RecordingSend:
    """Captures flushes; optionally delays or fails per call."""

    def __init__(self, scheduler, delay=0.0):
        self.scheduler = scheduler
        self.delay = delay
        self.calls = []
        self.fail_next = False

    async def __call__(self, shard_id, stream_id, seq, entries):
        if self.fail_next:
            self.fail_next = False
            raise RuntimeError("injected flush failure")
        if self.delay:
            await self.scheduler.sleep(self.delay)
        self.calls.append((shard_id, stream_id, seq, list(entries)))
        return {"applied": sum(e[3] for e in entries), "duplicate": False}


def test_constructor_validates_parameters():
    scheduler = Scheduler()
    send = RecordingSend(scheduler)
    with pytest.raises(ValueError, match="max_delay"):
        DeltaCoalescer(scheduler, send, "s1", max_delay=-1.0)
    with pytest.raises(ValueError, match="max_keys"):
        DeltaCoalescer(scheduler, send, "s1", max_keys=0)


def test_same_window_deltas_coalesce_into_one_flush():
    scheduler = Scheduler()
    send = RecordingSend(scheduler)
    coalescer = DeltaCoalescer(scheduler, send, "s1", max_delay=0.001)

    async def main():
        t1 = coalescer.emit("shard", "g", "e1", 0.0, 1, 2.0, 2.0, 2.0)
        t2 = coalescer.emit("shard", "g", "e1", 0.0, 1, 4.0, 4.0, 4.0)
        t3 = coalescer.emit("shard", "g", "e2", 0.0, 1, 9.0, 9.0, 9.0)
        return await scheduler.gather([t1, t2, t3])

    cohorts = scheduler.run_until_complete(main())
    # One flush; every ticket reports the shared cohort size.
    assert cohorts == [3, 3, 3]
    assert len(send.calls) == 1
    shard_id, stream_id, seq, entries = send.calls[0]
    assert (shard_id, stream_id, seq) == ("shard", "s1", 1)
    # Same (group, entity, bucket) merged: counts sum, extrema fold.
    assert entries == [("g", "e1", 0.0, 2, 6.0, 2.0, 4.0), ("g", "e2", 0.0, 1, 9.0, 9.0, 9.0)]
    assert coalescer.deltas_emitted == 3
    assert coalescer.flushes == 1
    assert coalescer.pending_deltas() == 0
    assert coalescer.oldest_pending() is None


def test_max_keys_overflow_seals_immediately():
    scheduler = Scheduler()
    send = RecordingSend(scheduler)
    coalescer = DeltaCoalescer(scheduler, send, "s1", max_delay=5.0, max_keys=2)

    async def main():
        t1 = coalescer.emit("shard", "g", "e1", 0.0, 1, 1.0, 1.0, 1.0)
        t2 = coalescer.emit("shard", "g", "e2", 0.0, 1, 1.0, 1.0, 1.0)
        await scheduler.gather([t1, t2])
        return scheduler.now

    acked_at = scheduler.run_until_complete(main())
    # Sealed on the second distinct key, not after the 5s window.
    assert acked_at < 1.0
    assert len(send.calls) == 1


def test_flushes_are_sequenced_and_fifo_chained():
    scheduler = Scheduler()
    send = RecordingSend(scheduler, delay=0.5)
    coalescer = DeltaCoalescer(scheduler, send, "s1", max_delay=0.0)

    async def main():
        first = coalescer.emit("shard", "g", "e1", 0.0, 1, 1.0, 1.0, 1.0)
        # Let the first buffer seal and its (slow) flush depart...
        await scheduler.sleep(0.1)
        second = coalescer.emit("shard", "g", "e1", 0.0, 1, 2.0, 2.0, 2.0)
        await scheduler.gather([first, second])

    scheduler.run_until_complete(main())
    # The second flush waited for the first's ack: seqs arrive in order.
    assert [call[2] for call in send.calls] == [1, 2]


def test_failed_flush_raises_on_tickets_and_chain_continues():
    scheduler = Scheduler()
    send = RecordingSend(scheduler)
    coalescer = DeltaCoalescer(scheduler, send, "s1", max_delay=0.0)
    send.fail_next = True

    async def main():
        doomed = coalescer.emit("shard", "g", "e1", 0.0, 1, 1.0, 1.0, 1.0)
        with pytest.raises(RuntimeError, match="injected"):
            await doomed
        # The chain is not wedged by the failure: the next flush departs.
        ok = coalescer.emit("shard", "g", "e1", 0.0, 1, 2.0, 2.0, 2.0)
        return await ok

    cohort = scheduler.run_until_complete(main())
    assert cohort == 1
    assert coalescer.flush_failures == 1
    assert [call[2] for call in send.calls] == [2]
    assert coalescer.pending_deltas() == 0


def test_oldest_pending_tracks_buffered_and_inflight_deltas():
    scheduler = Scheduler()
    send = RecordingSend(scheduler, delay=1.0)
    coalescer = DeltaCoalescer(scheduler, send, "s1", max_delay=0.2)

    async def main():
        ticket = coalescer.emit("shard", "g", "e1", 0.0, 1, 1.0, 1.0, 1.0)
        emitted_at = scheduler.now
        assert coalescer.oldest_pending() == emitted_at
        assert coalescer.pending_deltas() == 1
        # Past the window the delta is in flight, still pending.
        await scheduler.sleep(0.5)
        assert coalescer.oldest_pending() == emitted_at
        await ticket
        assert coalescer.oldest_pending() is None
        assert coalescer.pending_deltas() == 0

    scheduler.run_until_complete(main())


def test_independent_shards_flush_independently():
    scheduler = Scheduler()
    send = RecordingSend(scheduler)
    coalescer = DeltaCoalescer(scheduler, send, "s1", max_delay=0.0)

    async def main():
        tickets = [
            coalescer.emit("shard-a", "g", "e1", 0.0, 1, 1.0, 1.0, 1.0),
            coalescer.emit("shard-b", "g", "e1", 0.0, 1, 1.0, 1.0, 1.0),
        ]
        await scheduler.gather(tickets)

    scheduler.run_until_complete(main())
    assert sorted(call[0] for call in send.calls) == ["shard-a", "shard-b"]
    # Each shard numbers its own stream from 1.
    assert [call[2] for call in send.calls] == [1, 1]
