"""Unit tests for latency models."""

import random

import pytest

from repro.net import ConstantLatency, LogNormalLatency, UniformLatency, ZERO_LATENCY


@pytest.fixture
def rng():
    return random.Random(42)


def test_constant_latency(rng):
    model = ConstantLatency(0.003)
    assert model.sample(rng) == 0.003
    assert model.sample(rng) == 0.003


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_zero_latency_singleton(rng):
    assert ZERO_LATENCY.sample(rng) == 0.0


def test_uniform_latency_within_bounds(rng):
    model = UniformLatency(0.001, 0.002)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0.001 <= s <= 0.002 for s in samples)
    assert len(set(samples)) > 1  # actually jitters


def test_uniform_latency_validation():
    with pytest.raises(ValueError):
        UniformLatency(-0.1, 0.2)
    with pytest.raises(ValueError):
        UniformLatency(0.2, 0.1)


def test_lognormal_latency_positive_and_skewed(rng):
    model = LogNormalLatency(median=0.001, sigma=0.5)
    samples = sorted(model.sample(rng) for _ in range(2000))
    assert all(s > 0 for s in samples)
    median = samples[len(samples) // 2]
    mean = sum(samples) / len(samples)
    assert median == pytest.approx(0.001, rel=0.15)
    assert mean > median  # right skew


def test_lognormal_zero_sigma_is_deterministic(rng):
    model = LogNormalLatency(median=0.004, sigma=0.0)
    assert model.sample(rng) == 0.004


def test_lognormal_validation():
    with pytest.raises(ValueError):
        LogNormalLatency(median=0)
    with pytest.raises(ValueError):
        LogNormalLatency(median=1, sigma=-1)


def test_determinism_with_same_seed():
    model = UniformLatency(0, 1)
    first = [model.sample(random.Random(7)) for _ in range(1)]
    second = [model.sample(random.Random(7)) for _ in range(1)]
    assert first == second
