"""Unit tests for the simulated network."""

import pytest

from repro.kernel import RngRegistry, Scheduler
from repro.net import ConstantLatency, Network


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def net(sched):
    network = Network(
        sched,
        rng=RngRegistry(1),
        loopback=ConstantLatency(0.0),
        lan=ConstantLatency(0.001),
    )
    network.register("silo-a")
    network.register("silo-b")
    return network


def test_loopback_is_free(sched, net):
    async def main():
        await net.transfer("silo-a", "silo-a")
        return sched.now

    assert sched.run_until_complete(main()) == 0.0
    assert net.stats.loopback_messages == 1
    assert net.stats.remote_messages == 0


def test_remote_transfer_charges_lan_latency(sched, net):
    async def main():
        await net.transfer("silo-a", "silo-b")
        return sched.now

    assert sched.run_until_complete(main()) == pytest.approx(0.001)
    assert net.stats.remote_messages == 1
    assert net.stats.total_latency == pytest.approx(0.001)


def test_unknown_endpoints_rejected(sched, net):
    async def bad_target():
        await net.transfer("silo-a", "nowhere")

    async def bad_source():
        await net.transfer("nowhere", "silo-a")

    with pytest.raises(KeyError):
        sched.run_until_complete(bad_target())
    with pytest.raises(KeyError):
        sched.run_until_complete(bad_source())


def test_unregister_removes_endpoint(sched, net):
    net.unregister("silo-b")
    assert not net.knows("silo-b")

    async def main():
        await net.transfer("silo-a", "silo-b")

    with pytest.raises(KeyError):
        sched.run_until_complete(main())


def test_per_path_override(sched, net):
    net.set_path_latency("silo-a", "silo-b", ConstantLatency(0.5))

    async def main():
        await net.transfer("silo-a", "silo-b")
        forward = sched.now
        await net.transfer("silo-b", "silo-a")  # override is directional
        return forward, sched.now

    forward, total = sched.run_until_complete(main())
    assert forward == pytest.approx(0.5)
    assert total == pytest.approx(0.501)


def test_stats_count_per_endpoint(sched, net):
    async def main():
        await net.transfer("silo-a", "silo-b")
        await net.transfer("silo-a", "silo-b")
        await net.transfer("silo-b", "silo-a")

    sched.run_until_complete(main())
    assert net.stats.per_endpoint_sent == {"silo-a": 2, "silo-b": 1}
    assert net.stats.messages == 3
