"""Chaos network faults: loss, duplication, extra delay, time windows."""

import random

import pytest

from repro.errors import TimeoutError as KernelTimeoutError
from repro.kernel import RngRegistry, Scheduler
from repro.net import ConstantLatency, Network, NetworkFaultInjector
from repro.runtime import Actor, AodbRuntime, RuntimeConfig


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def net(sched):
    network = Network(
        sched,
        rng=RngRegistry(1),
        loopback=ConstantLatency(0.0),
        lan=ConstantLatency(0.001),
    )
    network.register("silo-a")
    network.register("silo-b")
    return network


def test_injector_validates_rates():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        NetworkFaultInjector(rng, loss_rate=1.5)
    with pytest.raises(ValueError):
        NetworkFaultInjector(rng, duplication_rate=-0.1)
    with pytest.raises(ValueError):
        NetworkFaultInjector(rng, extra_delay=-1.0)


def test_loss_parks_the_transfer_forever(sched, net):
    net.inject_faults(NetworkFaultInjector(random.Random(0), loss_rate=1.0))

    async def main():
        # A lost message is silence, not an error: only a timeout sees it.
        with pytest.raises(KernelTimeoutError):
            await sched.timeout(
                sched.spawn(net.transfer("silo-a", "silo-b")), 1.0
            )

    sched.run_until_complete(main())
    assert net.stats.lost_messages == 1
    assert net.faults.injected_losses == 1


def test_fault_window_bounds_the_chaos(sched, net):
    net.inject_faults(
        NetworkFaultInjector(random.Random(0), loss_rate=1.0, start=5.0, end=10.0)
    )

    async def main():
        await net.transfer("silo-a", "silo-b")  # before the window: clean
        await sched.at(12.0)
        await net.transfer("silo-a", "silo-b")  # after the window: clean

    sched.run_until_complete(main())
    assert net.stats.lost_messages == 0


def test_protected_endpoints_are_never_faulted(sched, net):
    net.inject_faults(
        NetworkFaultInjector(
            random.Random(0), loss_rate=1.0, protected={"silo-b"}
        )
    )

    async def main():
        await net.transfer("silo-a", "silo-b")

    sched.run_until_complete(main())
    assert net.stats.lost_messages == 0


def test_extra_delay_slows_transfers(sched, net):
    net.inject_faults(
        NetworkFaultInjector(random.Random(0), extra_delay=0.25)
    )

    async def main():
        await net.transfer("silo-a", "silo-b")
        return sched.now

    assert sched.run_until_complete(main()) == pytest.approx(0.251)


def test_duplicated_one_way_executes_twice():
    # End to end: a duplicated tell runs the handler twice — the
    # at-least-once hazard the chaos harness is designed to surface.
    sched = Scheduler()
    runtime = AodbRuntime(
        sched,
        config=RuntimeConfig(default_method_cost=0.0, activation_cost=0.0),
        network=Network(sched, lan=ConstantLatency(0.001)),
    )
    runtime.add_silo("silo-0", cores=2)
    runtime.network.inject_faults(
        NetworkFaultInjector(random.Random(0), duplication_rate=1.0)
    )

    class Counter(Actor):
        hits = 0

        async def bump(self):
            type(self).hits += 1

    runtime.register_actor(Counter)
    Counter.hits = 0

    async def main():
        runtime.ref("Counter", "c").tell("bump")
        await sched.sleep(1.0)

    sched.run_until_complete(main())
    assert Counter.hits == 2
    assert runtime.network.stats.duplicated_messages >= 1


def test_duplicated_ask_reply_is_deduplicated():
    sched = Scheduler()
    runtime = AodbRuntime(
        sched,
        config=RuntimeConfig(default_method_cost=0.0, activation_cost=0.0),
        network=Network(sched, lan=ConstantLatency(0.001)),
    )
    runtime.add_silo("silo-0", cores=2)
    runtime.network.inject_faults(
        NetworkFaultInjector(random.Random(0), duplication_rate=1.0)
    )

    class Echo(Actor):
        calls = 0

        async def ping(self):
            type(self).calls += 1
            return "pong"

    runtime.register_actor(Echo)
    Echo.calls = 0

    async def main():
        result = await runtime.ref("Echo", "e").ping()
        await sched.sleep(0.1)  # let the duplicate execute
        return result

    # The caller sees exactly one answer even though the method ran twice.
    assert sched.run_until_complete(main()) == "pong"
    assert Echo.calls == 2
