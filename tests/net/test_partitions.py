"""PartitionInjector: scripted bidirectional netsplits with heal times."""

import pytest

from repro.errors import TimeoutError as KernelTimeoutError
from repro.kernel import RngRegistry, Scheduler
from repro.net import ConstantLatency, Network, PartitionInjector


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def net(sched):
    network = Network(
        sched,
        rng=RngRegistry(1),
        loopback=ConstantLatency(0.0),
        lan=ConstantLatency(0.001),
    )
    for endpoint in ("silo-a", "silo-b", "silo-c"):
        network.register(endpoint)
    return network


def test_injector_validates_scenarios():
    with pytest.raises(ValueError):
        PartitionInjector([([{"a"}, {"b"}], 5.0, 4.0)])  # ends before start
    with pytest.raises(ValueError):
        PartitionInjector([([{"a", "b"}], 0.0, 1.0)])  # single group


def test_blocks_only_across_groups_inside_the_window():
    injector = PartitionInjector([([{"a", "b"}, {"c"}], 2.0, 5.0)])
    # Outside the window nothing is blocked.
    assert not injector.blocks("a", "c", 1.0)
    assert not injector.blocks("a", "c", 5.0)
    # Inside: cross-group blocked both directions, same-group clean.
    assert injector.blocks("a", "c", 2.0)
    assert injector.blocks("c", "b", 3.0)
    assert not injector.blocks("a", "b", 3.0)
    # Endpoints not named by any group are unaffected.
    assert not injector.blocks("client", "c", 3.0)
    assert injector.heals_at() == 5.0


def test_partitioned_transfer_is_silence_not_error(sched, net):
    net.inject_partitions(
        PartitionInjector([([{"silo-a"}, {"silo-b"}], 0.0, 10.0)])
    )

    async def main():
        # Like a lost message: the sender sees nothing but a timeout.
        with pytest.raises(KernelTimeoutError):
            await sched.timeout(
                sched.spawn(net.transfer("silo-a", "silo-b")), 1.0
            )
        # Same-side traffic keeps flowing.
        await net.transfer("silo-a", "silo-c")

    sched.run_until_complete(main())
    assert net.stats.partitioned_messages == 1
    assert net.partitions.blocked_messages == 1


def test_partition_heals_on_schedule(sched, net):
    net.inject_partitions(
        PartitionInjector([([{"silo-a"}, {"silo-b"}], 0.0, 2.0)])
    )

    async def main():
        await sched.at(3.0)
        await net.transfer("silo-a", "silo-b")

    sched.run_until_complete(main())
    assert net.stats.partitioned_messages == 0


def test_sequential_scenarios_apply_in_turn(sched, net):
    injector = PartitionInjector(
        [
            ([{"silo-a"}, {"silo-b"}], 0.0, 2.0),
            ([{"silo-a"}, {"silo-c"}], 4.0, 6.0),
        ]
    )
    assert injector.blocks("silo-a", "silo-b", 1.0)
    assert not injector.blocks("silo-a", "silo-c", 1.0)
    assert not injector.blocks("silo-a", "silo-b", 5.0)
    assert injector.blocks("silo-a", "silo-c", 5.0)
