"""Unit tests for the adaptive delivery batcher (the actor-message Nagle)."""

import pytest

from repro.kernel import RngRegistry, Scheduler
from repro.net import ConstantLatency, Network
from repro.net.batching import (
    PROBE_INTERVAL,
    SOLO_STREAK_LIMIT,
    EnvelopeBatcher,
)

LAN = 0.001
WINDOW = 0.01


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def net(sched):
    network = Network(
        sched,
        rng=RngRegistry(1),
        loopback=ConstantLatency(0.0),
        lan=ConstantLatency(LAN),
    )
    network.register("client")
    network.register("silo-a")
    network.register("silo-b")
    return network


@pytest.fixture
def batcher(sched, net):
    return EnvelopeBatcher(net, sched, max_size=4, max_delay=WINDOW)


def test_same_instant_messages_share_one_envelope(sched, net, batcher):
    async def main():
        first = batcher.transfer("client", "silo-a")
        second = batcher.transfer("client", "silo-a")
        return await first, await second

    (elapsed_a, cohort_a), (elapsed_b, cohort_b) = sched.run_until_complete(main())
    assert cohort_a == cohort_b == 2
    assert net.stats.envelopes == 1
    assert net.stats.messages == 2
    assert net.stats.batched_messages == 2
    assert net.stats.largest_envelope == 2
    # Both waited the full window then one wire latency.
    assert elapsed_a == pytest.approx(WINDOW + LAN)
    assert elapsed_b == pytest.approx(WINDOW + LAN)


def test_distinct_paths_never_coalesce(sched, net, batcher):
    async def main():
        to_a = batcher.transfer("client", "silo-a")
        to_b = batcher.transfer("client", "silo-b")
        return await to_a, await to_b

    (_, cohort_a), (_, cohort_b) = sched.run_until_complete(main())
    assert cohort_a == cohort_b == 1
    assert net.stats.envelopes == 2


def test_size_bound_flushes_before_window(sched, net, batcher):
    async def main():
        tickets = [batcher.transfer("client", "silo-a") for _ in range(4)]
        results = [await ticket for ticket in tickets]
        return results, sched.now

    results, finished = sched.run_until_complete(main())
    assert [cohort for _, cohort in results] == [4, 4, 4, 4]
    # Departed at the size bound (t=0), not at the window (t=WINDOW).
    assert finished == pytest.approx(LAN)
    assert net.stats.envelopes == 1


def test_max_size_one_degenerates_to_unbatched(sched, net):
    batcher = EnvelopeBatcher(net, sched, max_size=1, max_delay=WINDOW)

    async def main():
        _, cohort = await batcher.transfer("client", "silo-a")
        return cohort, sched.now

    cohort, finished = sched.run_until_complete(main())
    assert cohort == 1
    assert finished == pytest.approx(LAN)


def test_overflow_starts_a_second_envelope(sched, net, batcher):
    async def main():
        tickets = [batcher.transfer("client", "silo-a") for _ in range(5)]
        return [await ticket for ticket in tickets]

    results = sched.run_until_complete(main())
    assert [cohort for _, cohort in results] == [4, 4, 4, 4, 1]
    assert net.stats.envelopes == 2


def test_sparse_path_goes_immediate_after_solo_streak(sched, net, batcher):
    """After SOLO_STREAK_LIMIT solo envelopes the path stops paying the window."""
    spacing = 10 * WINDOW  # far apart: every envelope is solo
    durations = []

    async def main():
        for _ in range(SOLO_STREAK_LIMIT + 1):
            started = sched.now
            await batcher.transfer("client", "silo-a")
            durations.append(sched.now - started)
            await sched.sleep(spacing)

    sched.run_until_complete(main())
    # The first SOLO_STREAK_LIMIT sends pay the full window...
    for duration in durations[:SOLO_STREAK_LIMIT]:
        assert duration == pytest.approx(WINDOW + LAN)
    # ...then the streak trips and delivery is immediate (wire latency only).
    assert durations[-1] == pytest.approx(LAN)
    assert batcher.immediate_flushes == 1


def test_probe_envelope_rediscovers_batching(sched, net, batcher):
    """A sparse path re-enters windowed batching when traffic returns.

    Without probes, immediate (cohort-1) envelopes would perpetuate the solo
    streak forever.  Here the path first goes sparse, then a burst arrives;
    within PROBE_INTERVAL envelopes one probe must hold the window open and
    coalesce the burst.
    """
    spacing = 10 * WINDOW
    cohorts = []

    async def burst():
        tickets = [batcher.transfer("client", "silo-a") for _ in range(2)]
        for ticket in tickets:
            _, cohort = await ticket
            cohorts.append(cohort)

    async def main():
        for _ in range(SOLO_STREAK_LIMIT + 1):
            await batcher.transfer("client", "silo-a")
            await sched.sleep(spacing)
        # Sustained paired traffic: every envelope carries 2 candidates.
        for _ in range(PROBE_INTERVAL + 1):
            await burst()
            await sched.sleep(spacing)

    sched.run_until_complete(main())
    assert max(cohorts) == 2, "no probe ever re-tested the sparse path"
    # Once a probe coalesces, the streak resets and batching stays on.
    assert cohorts[-2:] == [2, 2]


def test_per_path_fifo_survives_latency_inversion(sched, batcher, net):
    """A later envelope must not resolve before an earlier, slower one."""

    class ShrinkingLatency:
        def __init__(self):
            self.samples = [5 * WINDOW, 0.0]

        def sample(self, rng):
            return self.samples.pop(0) if self.samples else 0.0

    net.set_path_latency("client", "silo-a", ShrinkingLatency())
    order = []

    async def send(tag):
        await batcher.transfer("client", "silo-a")
        order.append(tag)

    async def main():
        first = sched.spawn(send("slow"))
        # Join after the first envelope departed so a new one forms.
        await sched.sleep(2 * WINDOW)
        second = sched.spawn(send("fast"))
        await sched.gather([first, second])

    sched.run_until_complete(main())
    assert order == ["slow", "fast"]


def test_lost_envelope_parks_members_but_chain_stays_live(sched, net, batcher):
    plans = {"drop": True}
    real_plan = net.plan_envelope

    def flaky_plan(source, target, count):
        if plans.pop("drop", False):
            net.stats.lost_messages += count
            return None
        return real_plan(source, target, count)

    net.plan_envelope = flaky_plan
    outcomes = []

    async def send(tag):
        await batcher.transfer("client", "silo-a")
        outcomes.append(tag)

    async def main():
        sched.spawn(send("lost"))
        await sched.sleep(2 * WINDOW)
        await send("after-loss")

    sched.run_until_complete(main())
    # The lost message parked forever; the path kept delivering afterwards.
    assert outcomes == ["after-loss"]
    assert net.stats.lost_messages == 1


def test_unknown_target_raises_on_every_member(sched, net, batcher):
    async def main():
        first = batcher.transfer("client", "nowhere")
        second = batcher.transfer("client", "nowhere")
        results = []
        for ticket in (first, second):
            try:
                await ticket
                results.append("ok")
            except KeyError:
                results.append("keyerror")
        return results

    assert sched.run_until_complete(main()) == ["keyerror", "keyerror"]


def test_constructor_validation(sched, net):
    with pytest.raises(ValueError):
        EnvelopeBatcher(net, sched, max_size=0)
    with pytest.raises(ValueError):
        EnvelopeBatcher(net, sched, max_delay=-0.1)
