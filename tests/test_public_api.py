"""The advertised top-level API surface works as documented."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_readme_quickstart_runs():
    from repro import Actor, AodbDatabase, AodbRuntime, Scheduler

    class Greeter(Actor):
        async def greet(self, name):
            return f"hello {name}"

    scheduler = Scheduler()
    runtime = AodbRuntime(scheduler)
    runtime.add_silo("silo-1", cores=2)
    db = AodbDatabase(runtime)
    db.register_actor(Greeter)

    async def main():
        return await db.ref("Greeter", "g").greet("world")

    assert scheduler.run_until_complete(main()) == "hello world"


def test_partition_tolerance_surface():
    """The PR-6 partition-tolerance API is part of the advertised surface."""
    from repro import FencedWriteError, QuarantinedSiloError, RuntimeConfig
    from repro.errors import SiloUnavailableError, StorageError

    assert issubclass(FencedWriteError, StorageError)
    assert issubclass(QuarantinedSiloError, SiloUnavailableError)
    config = RuntimeConfig()
    assert config.enable_fencing is True
    assert config.redo_lag == 0.0
    assert config.eviction_quorum == 0.5
    assert config.quarantine_on_lease_loss is True
    config.validate()
    config.redo_lag = -1.0
    try:
        config.validate()
    except ValueError:
        pass
    else:  # pragma: no cover - guard
        raise AssertionError("negative redo_lag must be rejected")


def test_subpackages_import():
    import repro.aodb
    import repro.bench
    import repro.cattle
    import repro.ingest
    import repro.kernel
    import repro.net
    import repro.runtime
    import repro.shm
    import repro.storage
    import repro.warehouse

    assert repro.bench.M5_LARGE.cores == 2
