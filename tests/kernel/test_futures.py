"""Unit tests for kernel futures."""

import pytest

from repro.errors import CancelledError, InvalidStateError
from repro.kernel import Future, all_of, any_of, completed, failed


def test_future_starts_pending():
    fut = Future("x")
    assert not fut.done()
    assert not fut.cancelled()


def test_result_before_done_raises():
    fut = Future()
    with pytest.raises(InvalidStateError):
        fut.result()
    with pytest.raises(InvalidStateError):
        fut.exception()


def test_set_result_resolves():
    fut = Future()
    fut.set_result(42)
    assert fut.done()
    assert fut.result() == 42
    assert fut.exception() is None


def test_set_exception_rejects():
    fut = Future()
    fut.set_exception(ValueError("boom"))
    assert fut.done()
    with pytest.raises(ValueError, match="boom"):
        fut.result()
    assert isinstance(fut.exception(), ValueError)


def test_double_resolution_raises():
    fut = Future()
    fut.set_result(1)
    with pytest.raises(InvalidStateError):
        fut.set_result(2)
    with pytest.raises(InvalidStateError):
        fut.set_exception(RuntimeError())


def test_cancel_pending_future():
    fut = Future("c")
    assert fut.cancel()
    assert fut.cancelled()
    with pytest.raises(CancelledError):
        fut.result()


def test_cancel_done_future_is_noop():
    fut = Future()
    fut.set_result(1)
    assert not fut.cancel()
    assert fut.result() == 1


def test_callbacks_run_on_resolution_in_order():
    fut = Future()
    seen = []
    fut.add_done_callback(lambda f: seen.append(("a", f.result())))
    fut.add_done_callback(lambda f: seen.append(("b", f.result())))
    fut.set_result(7)
    assert seen == [("a", 7), ("b", 7)]


def test_callback_on_already_done_future_runs_immediately():
    fut = completed(5)
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.result()))
    assert seen == [5]


def test_completed_and_failed_helpers():
    assert completed("v").result() == "v"
    with pytest.raises(KeyError):
        failed(KeyError("k")).result()


def test_all_of_empty_resolves_immediately():
    combined = all_of([])
    assert combined.done()
    assert combined.result() == []


def test_all_of_preserves_order():
    futures = [Future(str(i)) for i in range(3)]
    combined = all_of(futures)
    futures[2].set_result("c")
    futures[0].set_result("a")
    assert not combined.done()
    futures[1].set_result("b")
    assert combined.result() == ["a", "b", "c"]


def test_all_of_rejects_on_first_error():
    futures = [Future(), Future()]
    combined = all_of(futures)
    futures[1].set_exception(RuntimeError("first"))
    assert combined.done()
    with pytest.raises(RuntimeError, match="first"):
        combined.result()
    # Later resolutions of remaining inputs must not corrupt the result.
    futures[0].set_result(1)
    with pytest.raises(RuntimeError, match="first"):
        combined.result()


def test_all_of_treats_cancellation_as_error():
    futures = [Future(), Future()]
    combined = all_of(futures)
    futures[0].cancel()
    with pytest.raises(CancelledError):
        combined.result()


def test_any_of_mirrors_first_completion():
    futures = [Future(), Future()]
    combined = any_of(futures)
    futures[1].set_result("winner")
    assert combined.result() == "winner"
    futures[0].set_result("late")
    assert combined.result() == "winner"


def test_any_of_requires_inputs():
    with pytest.raises(ValueError):
        any_of([])


def test_any_of_mirrors_first_error():
    futures = [Future(), Future()]
    combined = any_of(futures)
    futures[0].set_exception(ValueError("bad"))
    with pytest.raises(ValueError, match="bad"):
        combined.result()
