"""Unit tests for the virtual-time scheduler and tasks."""

import pytest

from repro.errors import CancelledError, DeadlockError
from repro.errors import TimeoutError as KernelTimeoutError
from repro.kernel import Future, Scheduler, run


def test_run_returns_coroutine_value():
    async def main():
        return 99

    assert run(main()) == 99


def test_virtual_time_advances_with_sleep():
    sched = Scheduler()
    timestamps = []

    async def main():
        timestamps.append(sched.now)
        await sched.sleep(1.5)
        timestamps.append(sched.now)
        await sched.sleep(0.5)
        timestamps.append(sched.now)

    sched.run_until_complete(main())
    assert timestamps == [0.0, 1.5, 2.0]


def test_sleep_zero_yields_but_does_not_advance_time():
    sched = Scheduler()

    async def main():
        before = sched.now
        await sched.sleep(0)
        return sched.now - before

    assert sched.run_until_complete(main()) == 0.0


def test_concurrent_tasks_interleave_deterministically():
    sched = Scheduler()
    order = []

    async def worker(name, delay):
        await sched.sleep(delay)
        order.append(name)

    async def main():
        tasks = [
            sched.spawn(worker("slow", 2.0)),
            sched.spawn(worker("fast", 1.0)),
            sched.spawn(worker("tie-a", 1.0)),
        ]
        await sched.gather(tasks)

    sched.run_until_complete(main())
    # Ties resolve in spawn/FIFO order.
    assert order == ["fast", "tie-a", "slow"]


def test_task_exception_propagates_to_awaiter():
    sched = Scheduler()

    async def boom():
        await sched.sleep(1)
        raise ValueError("kapow")

    async def main():
        task = sched.spawn(boom())
        with pytest.raises(ValueError, match="kapow"):
            await task
        return "survived"

    assert sched.run_until_complete(main()) == "survived"


def test_task_cancel_before_start():
    sched = Scheduler()
    ran = []

    async def worker():
        ran.append(True)

    async def main():
        task = sched.spawn(worker())
        task.cancel()
        await sched.sleep(1)
        return task.future.cancelled()

    assert sched.run_until_complete(main()) is True
    assert ran == []


def test_task_cancel_while_sleeping():
    sched = Scheduler()
    cleaned_up = []

    async def worker():
        try:
            await sched.sleep(100)
        except CancelledError:
            cleaned_up.append(True)
            raise

    async def main():
        task = sched.spawn(worker())
        await sched.sleep(1)
        task.cancel()
        await sched.sleep(0)
        return task.future.cancelled()

    assert sched.run_until_complete(main()) is True
    assert cleaned_up == [True]
    assert sched.now < 100


def test_cancel_finished_task_returns_false():
    sched = Scheduler()

    async def worker():
        return 1

    async def main():
        task = sched.spawn(worker())
        await task
        return task.cancel()

    assert sched.run_until_complete(main()) is False


def test_deadlock_detection():
    sched = Scheduler()

    async def main():
        await Future("never")

    with pytest.raises(DeadlockError):
        sched.run_until_complete(main())


def test_awaiting_non_future_fails_the_task():
    sched = Scheduler()

    class Bogus:
        def __await__(self):
            yield "not a future"

    async def main():
        await Bogus()

    with pytest.raises(TypeError):
        sched.run_until_complete(main())


def test_timeout_fires_when_too_slow():
    sched = Scheduler()

    async def slow():
        await sched.sleep(10)
        return "done"

    async def main():
        task = sched.spawn(slow())
        with pytest.raises(KernelTimeoutError):
            await sched.timeout(task, 5)
        return sched.now

    assert sched.run_until_complete(main()) == 5


def test_timeout_passes_through_fast_result():
    sched = Scheduler()

    async def fast():
        await sched.sleep(1)
        return "quick"

    async def main():
        return await sched.timeout(sched.spawn(fast()), 5)

    assert sched.run_until_complete(main()) == "quick"


def test_gather_mixes_tasks_and_futures():
    sched = Scheduler()

    async def value(v, d):
        await sched.sleep(d)
        return v

    async def main():
        fut = Future()
        sched.call_later(1, lambda: fut.set_result("from-future"))
        return await sched.gather([sched.spawn(value("a", 3)), fut, value("c", 2)])

    assert sched.run_until_complete(main()) == ["a", "from-future", "c"]


def test_run_for_advances_clock_to_deadline():
    sched = Scheduler()
    fired = []
    sched.call_later(1.0, lambda: fired.append(1))
    sched.call_later(5.0, lambda: fired.append(5))
    sched.run_for(2.0)
    assert fired == [1]
    assert sched.now == 2.0
    sched.run_for(4.0)
    assert fired == [1, 5]


def test_call_at_in_the_past_runs_now():
    sched = Scheduler(start_time=10.0)
    fired = []
    sched.call_at(3.0, lambda: fired.append(sched.now))
    sched.drain()
    assert fired == [10.0]


def test_events_processed_counter():
    sched = Scheduler()

    async def main():
        for _ in range(3):
            await sched.sleep(1)

    sched.run_until_complete(main())
    assert sched.events_processed >= 3


def test_cancel_lands_even_when_awaited_future_just_resolved():
    # Regression: cancelling a task whose awaited future has already
    # resolved (resume step still queued) must not be a silent no-op —
    # the looping task would otherwise keep running forever.
    sched = Scheduler()
    ticks = []

    async def looper():
        while True:
            await sched.sleep(0.5)
            ticks.append(sched.now)

    async def main():
        task = sched.spawn(looper())
        # t=2.0 coincides exactly with a sleep expiry, so at cancel time
        # the sleep future is resolved but looper has not resumed yet.
        await sched.at(2.0)
        assert task.cancel() is True
        await sched.sleep(2.0)
        assert task.done()

    sched.run_until_complete(main())
    assert ticks == [0.5, 1.0, 1.5]


def test_cancel_detaches_from_pending_future():
    sched = Scheduler()
    ticks = []

    async def looper():
        while True:
            await sched.sleep(0.5)
            ticks.append(sched.now)

    async def main():
        task = sched.spawn(looper())
        await sched.at(1.75)  # mid-sleep: the awaited future is pending
        task.cancel()
        await sched.sleep(2.0)
        assert task.done()

    sched.run_until_complete(main())
    assert ticks == [0.5, 1.0, 1.5]
