"""Unit tests for CPU and token-bucket resource models."""

import pytest

from repro.kernel import CpuResource, Scheduler, TokenBucket


@pytest.fixture
def sched():
    return Scheduler()


def test_single_core_serializes_work(sched):
    cpu = CpuResource(sched, cores=1)
    finish_times = []

    async def job():
        await cpu.consume(1.0)
        finish_times.append(sched.now)

    async def main():
        await sched.gather([sched.spawn(job()) for _ in range(3)])

    sched.run_until_complete(main())
    assert finish_times == [1.0, 2.0, 3.0]


def test_multi_core_runs_in_parallel(sched):
    cpu = CpuResource(sched, cores=2)
    finish_times = []

    async def job():
        await cpu.consume(1.0)
        finish_times.append(sched.now)

    async def main():
        await sched.gather([sched.spawn(job()) for _ in range(4)])

    sched.run_until_complete(main())
    assert finish_times == [1.0, 1.0, 2.0, 2.0]


def test_speed_scales_service_time(sched):
    cpu = CpuResource(sched, cores=1, speed=2.0)

    async def main():
        await cpu.consume(1.0)
        return sched.now

    assert sched.run_until_complete(main()) == 0.5


def test_zero_cost_work_completes_now(sched):
    cpu = CpuResource(sched, cores=1)

    async def main():
        await cpu.consume(0.0)
        return sched.now

    assert sched.run_until_complete(main()) == 0.0


def test_negative_cost_rejected(sched):
    cpu = CpuResource(sched, cores=1)
    with pytest.raises(ValueError):
        cpu.consume(-1)


def test_invalid_construction():
    sched = Scheduler()
    with pytest.raises(ValueError):
        CpuResource(sched, cores=0)
    with pytest.raises(ValueError):
        CpuResource(sched, cores=1, speed=0)


def test_utilization_accounting(sched):
    cpu = CpuResource(sched, cores=2)

    async def main():
        await cpu.consume(1.0)   # one core busy 1s out of 2 cores * 2s
        await sched.sleep(1.0)

    sched.run_until_complete(main())
    assert cpu.utilization() == pytest.approx(0.25)
    assert cpu.jobs_completed == 1
    cpu.reset_accounting()
    assert cpu.busy_seconds == 0.0


def test_queue_depth_reflects_backlog(sched):
    cpu = CpuResource(sched, cores=1)

    async def submit():
        cpu.consume(2.0)
        cpu.consume(2.0)
        return cpu.queue_depth_seconds()

    depth = sched.run_until_complete(submit())
    assert depth == pytest.approx(4.0)


def test_wave_drains_with_fcfs_queueing(sched):
    # A synchronized wave of N jobs on c cores finishes in N/c * service.
    cpu = CpuResource(sched, cores=4)
    finish_times = []

    async def job():
        await cpu.consume(0.01)
        finish_times.append(sched.now)

    async def main():
        await sched.gather([sched.spawn(job()) for _ in range(100)])

    sched.run_until_complete(main())
    assert finish_times[-1] == pytest.approx(100 / 4 * 0.01)
    assert finish_times[0] == pytest.approx(0.01)


def test_token_bucket_consumes_burst_then_throttles(sched):
    bucket = TokenBucket(sched, rate=10, burst=10)
    assert bucket.try_consume(10) == 0.0
    wait = bucket.try_consume(5)
    assert wait == pytest.approx(0.5)
    # Tokens were not taken on failure.
    assert bucket.tokens == pytest.approx(0.0)


def test_token_bucket_refills_over_time(sched):
    bucket = TokenBucket(sched, rate=10, burst=10)
    bucket.try_consume(10)

    async def main():
        await sched.sleep(0.5)
        return bucket.tokens

    assert sched.run_until_complete(main()) == pytest.approx(5.0)


def test_token_bucket_async_consume_waits(sched):
    bucket = TokenBucket(sched, rate=10, burst=10)

    async def main():
        await bucket.consume(10)
        await bucket.consume(5)
        return sched.now

    assert sched.run_until_complete(main()) == pytest.approx(0.5)


def test_token_bucket_validation(sched):
    with pytest.raises(ValueError):
        TokenBucket(sched, rate=0)
    bucket = TokenBucket(sched, rate=1)
    with pytest.raises(ValueError):
        bucket.try_consume(-1)
