"""Regression tests for the kernel raw-speed overhaul.

Covers the timeout-timer leak (both directions of detachment), clean task
teardown on ``stop()``, pinned ``gather`` semantics, dispatch-order edge
cases around cancellation and timer-wheel ties, and the state-scrub
contract of the freelist pool.
"""

import gc
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerStoppedError
from repro.errors import TimeoutError as KernelTimeoutError
from repro.kernel.futures import Future
from repro.kernel.pool import FreeList
from repro.kernel.scheduler import Scheduler


# -- S1: the timeout-timer leak ------------------------------------------------


def test_timeout_leak_pending_events_returns_to_baseline():
    """Sustained deadline-wrapped asks must not accumulate dead timers.

    Before the fix, every ``timeout()`` whose inner future resolved in time
    left its deadline timer armed: ``pending_events`` grew by one per call
    and the dead timers burned an event each when they eventually fired.
    Now the timer is cancelled the moment the inner future resolves, so the
    queue depth after each batch returns to the pre-batch baseline.
    """
    sched = Scheduler()
    peaks = []

    async def churn(batches: int, per_batch: int) -> None:
        baseline = sched.pending_events
        for _ in range(batches):
            for _ in range(per_batch):
                inner: Future[int] = Future()
                wrapped = sched.timeout(inner, 1000.0)
                inner.set_result(1)
                assert await wrapped == 1
            await sched.sleep(0.01)
            peaks.append(sched.pending_events - baseline)

    sched.run_until_complete(churn(batches=20, per_batch=50))
    # The queue never retains the resolved batches' deadline timers: after
    # every batch we are back to the baseline (the sleep itself resolved).
    assert max(peaks) <= 1, f"pending events grew: {peaks}"


def test_timeout_deadline_detaches_mirror_callback_from_inner():
    """Once the deadline fires, the wrapper must drop off the inner future.

    The other half of the leak: a long-lived inner future used to pin one
    mirror callback per expired deadline forever.
    """
    sched = Scheduler()
    inner: Future[int] = Future("long-lived")

    async def expire_many(count: int) -> None:
        for _ in range(count):
            with pytest.raises(KernelTimeoutError):
                await sched.timeout(inner, 0.001)

    sched.run_until_complete(expire_many(25))
    assert inner._cb0 is None
    assert not inner._callbacks
    inner.set_result(7)  # must not touch any expired wrapper


def test_timeout_cancelled_timers_never_fire_as_events():
    """Dead deadline timers must not inflate ``events_processed``."""
    sched = Scheduler()

    async def run() -> None:
        for _ in range(100):
            inner: Future[None] = Future()
            wrapped = sched.timeout(inner, 50.0)
            inner.set_result(None)
            await wrapped

    sched.run_until_complete(run())
    before = sched.events_processed
    sched.run_for(100.0)  # past every armed deadline
    assert sched.events_processed == before


# -- S2: stop() routes queued first steps through Task cleanup -----------------


def test_stop_closes_queued_first_steps_without_runtime_warning():
    """Tasks spawned but never stepped are closed by ``stop()``, not GC."""
    sched = Scheduler()

    async def never_runs() -> None:  # pragma: no cover - must not start
        raise AssertionError("stopped scheduler ran a queued task")

    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        tasks = [sched.spawn(never_runs(), name=f"queued-{i}") for i in range(8)]
        sched.stop()
        for task in tasks:
            assert task.done()
            assert task.future.cancelled()
        del tasks
        gc.collect()

    late = never_runs()
    with pytest.raises(SchedulerStoppedError):
        sched.spawn(late)
    late.close()


def test_stop_closes_timer_queued_tasks():
    """First steps parked behind timers (heap and wheel) are cleaned too."""
    sched = Scheduler()
    fired = []

    async def tick() -> None:  # pragma: no cover - must not start
        fired.append(1)

    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        # Far timer (wheel) and near timer (heap), each carrying a task step.
        from repro.kernel.scheduler import Task

        near = Task(tick(), sched, name="near")
        far = Task(tick(), sched, name="far")
        sched.call_later(0.001, Task._step, near)
        sched.call_later(10.0, Task._step, far)
        sched.stop()
        assert near.done() and far.done()
        del near, far
        gc.collect()
    assert not fired


# -- S3: gather semantics pinned ----------------------------------------------


def test_gather_empty_iterable_resolves_immediately():
    sched = Scheduler()

    async def main() -> list:
        return await sched.gather([])

    assert sched.run_until_complete(main()) == []


def test_gather_result_order_is_input_order_not_completion_order():
    sched = Scheduler()

    async def slow(value: str, delay: float) -> str:
        await sched.sleep(delay)
        return value

    async def main() -> list:
        fut: Future[str] = Future()
        sched.call_later(0.05, lambda: fut.set_result("future"))
        return await sched.gather(
            [
                sched.spawn(slow("slowest", 0.9)),  # Task, completes last
                fut,  # plain Future
                slow("coroutine", 0.1),  # bare coroutine, spawned by gather
            ]
        )

    assert sched.run_until_complete(main()) == ["slowest", "future", "coroutine"]


def test_gather_raises_lowest_index_error_not_first_to_fail():
    sched = Scheduler()

    async def fail_after(delay: float, message: str) -> None:
        await sched.sleep(delay)
        raise ValueError(message)

    async def ok(delay: float) -> str:
        await sched.sleep(delay)
        return "ok"

    async def main() -> None:
        # Index 2 fails *first* in time; index 1 fails later.  The reported
        # error must be index 1's (lowest failed index), and every input
        # must have settled before gather raises.
        await sched.gather(
            [
                sched.spawn(ok(0.5)),
                sched.spawn(fail_after(0.4, "lowest-index")),
                sched.spawn(fail_after(0.1, "first-to-fail")),
            ]
        )

    with pytest.raises(ValueError, match="lowest-index"):
        sched.run_until_complete(main())


# -- S4: dispatch edge cases ---------------------------------------------------


def test_cancel_while_resume_is_queued_delivers_cancellation():
    """A task whose awaited future resolved (resume queued) then got
    cancelled must observe the cancellation, not the stale resume value."""
    sched = Scheduler()
    observed = []

    async def waiter(fut: Future[str]) -> None:
        try:
            observed.append(await fut)
        except BaseException as exc:  # noqa: BLE001 - recording
            observed.append(type(exc).__name__)
            raise

    async def main() -> None:
        fut: Future[str] = Future()
        task = sched.spawn(waiter(fut))
        await sched.sleep(0)  # let the waiter park on fut
        fut.set_result("stale")  # resume step is now queued...
        task.cancel()  # ...and cancellation must win
        await sched.sleep(0.01)
        assert task.done()
        assert task.future.cancelled()

    sched.run_until_complete(main())
    assert observed == ["CancelledError"]


def test_timer_ties_fire_fifo_by_arming_order():
    """Timers armed for the same instant fire in arming (seq) order, and
    wheel-bucketed timers keep that order through the bucket flush."""
    sched = Scheduler()
    fired: list[str] = []

    # Same deadline, alternating arming order, far enough out for the wheel.
    for i in range(10):
        sched.call_at(5.0, fired.append, f"wheel-{i}")
    # Same instant, near horizon: straight to the heap.
    for i in range(10):
        sched.call_at(0.001, fired.append, f"heap-{i}")
    sched.drain()
    assert fired == [f"heap-{i}" for i in range(10)] + [
        f"wheel-{i}" for i in range(10)
    ]


def test_wheel_tie_order_survives_mixed_arming():
    """Interleaving near/far arming with identical deadlines stays FIFO."""
    sched = Scheduler()
    fired: list[int] = []
    for i in range(20):
        # All at t=1.0: first ten armed before a sleep event, last ten after.
        sched.call_at(1.0, fired.append, i)
    sched.drain()
    assert fired == list(range(20))


# -- S4: pooled-object reuse never leaks state (property test) ----------------


class _Carrier:
    __slots__ = ("a", "b", "c")

    def __init__(self) -> None:
        self.a = 0
        self.b = ""
        self.c = None


def _reset_carrier(carrier: _Carrier) -> None:
    carrier.a = 0
    carrier.b = ""
    carrier.c = None


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["acquire", "release"]),
            st.integers(min_value=0, max_value=1_000_000),
            st.text(max_size=8),
        ),
        max_size=60,
    ),
    capacity=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_freelist_reuse_never_leaks_state(ops, capacity):
    """Whatever the acquire/release interleaving, an acquired object is
    always in its factory-fresh state and never aliased with another live
    acquisition."""
    pool: FreeList[_Carrier] = FreeList(_Carrier, _reset_carrier, capacity)
    live: list[_Carrier] = []
    for action, number, text in ops:
        if action == "acquire" or not live:
            carrier = pool.acquire()
            assert (carrier.a, carrier.b, carrier.c) == (0, "", None)
            assert all(carrier is not other for other in live)
            carrier.a = number
            carrier.b = text
            carrier.c = [number]
            live.append(carrier)
        else:
            pool.release(live.pop())
    assert len(pool) <= capacity


def test_freelist_absorbs_consecutive_double_release():
    pool: FreeList[_Carrier] = FreeList(_Carrier, _reset_carrier, 4)
    carrier = pool.acquire()
    assert pool.release(carrier) is True
    assert pool.release(carrier) is False  # absorbed, not double-shelved
    assert len(pool) == 1
    first = pool.acquire()
    second = pool.acquire()
    assert first is not second
