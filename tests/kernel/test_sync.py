"""Unit tests for kernel synchronization primitives."""

import pytest

from repro.errors import MailboxOverflowError
from repro.kernel import Event, Lock, Queue, Scheduler, Semaphore


@pytest.fixture
def sched():
    return Scheduler()


def test_event_wait_and_set(sched):
    event = Event(sched)
    woken = []

    async def waiter(name):
        await event.wait()
        woken.append(name)

    async def main():
        sched.spawn(waiter("a"))
        sched.spawn(waiter("b"))
        await sched.sleep(1)
        assert woken == []
        event.set()
        await sched.sleep(0)

    sched.run_until_complete(main())
    assert woken == ["a", "b"]
    assert event.is_set()


def test_event_wait_after_set_is_immediate(sched):
    event = Event(sched)
    event.set()

    async def main():
        before = sched.now
        await event.wait()
        return sched.now - before

    assert sched.run_until_complete(main()) == 0.0


def test_event_clear_blocks_again(sched):
    event = Event(sched)
    event.set()
    event.clear()
    assert not event.is_set()


def test_lock_mutual_exclusion_and_fifo(sched):
    lock = Lock(sched)
    order = []

    async def worker(name, hold):
        async with lock:
            order.append(("in", name))
            await sched.sleep(hold)
            order.append(("out", name))

    async def main():
        tasks = [
            sched.spawn(worker("a", 2)),
            sched.spawn(worker("b", 1)),
            sched.spawn(worker("c", 1)),
        ]
        await sched.gather(tasks)

    sched.run_until_complete(main())
    assert order == [
        ("in", "a"), ("out", "a"),
        ("in", "b"), ("out", "b"),
        ("in", "c"), ("out", "c"),
    ]
    assert not lock.locked


def test_lock_release_unlocked_raises(sched):
    with pytest.raises(RuntimeError):
        Lock(sched).release()


def test_semaphore_limits_concurrency(sched):
    sem = Semaphore(sched, 2)
    concurrent = 0
    peak = 0

    async def worker():
        nonlocal concurrent, peak
        async with sem:
            concurrent += 1
            peak = max(peak, concurrent)
            await sched.sleep(1)
            concurrent -= 1

    async def main():
        await sched.gather([sched.spawn(worker()) for _ in range(6)])

    sched.run_until_complete(main())
    assert peak == 2
    assert sem.value == 2


def test_semaphore_negative_value_rejected(sched):
    with pytest.raises(ValueError):
        Semaphore(sched, -1)


def test_queue_fifo_order(sched):
    queue = Queue(sched)

    async def main():
        queue.put_nowait(1)
        queue.put_nowait(2)
        first = await queue.get()
        second = await queue.get()
        return first, second

    assert sched.run_until_complete(main()) == (1, 2)


def test_queue_get_blocks_until_put(sched):
    queue = Queue(sched)
    got = []

    async def consumer():
        got.append(await queue.get())

    async def main():
        sched.spawn(consumer())
        await sched.sleep(5)
        assert got == []
        queue.put_nowait("late")
        await sched.sleep(0)

    sched.run_until_complete(main())
    assert got == ["late"]


def test_bounded_queue_overflow(sched):
    queue = Queue(sched, maxsize=2)
    queue.put_nowait(1)
    queue.put_nowait(2)
    assert queue.full()
    with pytest.raises(MailboxOverflowError):
        queue.put_nowait(3)


def test_queue_handoff_bypasses_capacity(sched):
    # A waiting getter receives the item directly, so a full queue is not
    # an error when someone is actively waiting.
    queue = Queue(sched, maxsize=1)
    got = []

    async def consumer():
        got.append(await queue.get())
        got.append(await queue.get())

    async def main():
        sched.spawn(consumer())
        await sched.sleep(0)
        queue.put_nowait("a")
        queue.put_nowait("b")
        await sched.sleep(0)

    sched.run_until_complete(main())
    assert got == ["a", "b"]


def test_queue_drain_nowait(sched):
    queue = Queue(sched)
    for i in range(4):
        queue.put_nowait(i)
    assert queue.drain_nowait() == [0, 1, 2, 3]
    assert queue.empty()
