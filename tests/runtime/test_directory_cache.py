"""Directory-cache correctness: hit accounting and stale-route invalidation.

The fast path caches grain-directory lookups per caller endpoint.  The
cache must be *transparent*: every path that removes a registration —
explicit deactivation, idle collection, detected crash, failure-detector
eviction — must invalidate it, and an undetected (zombie) crash must fail
exactly like the uncached runtime until membership repairs the view.  An
ActorRef must never successfully send to a stale silo.
"""

import pytest

from repro.errors import SiloUnavailableError
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, ActorKey, AodbRuntime, RuntimeConfig, WritePolicy
from repro.runtime.directory import DirectoryCache, GrainDirectory
from repro.runtime.resilience import RetryPolicy
from repro.storage import SystemStore


def build_runtime(sched, silos=2, lease=None, cache=True, **config_kwargs):
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        enable_directory_cache=cache,
        **config_kwargs,
    )
    store = SystemStore(sched, lease_seconds=lease) if lease is not None else None
    runtime = AodbRuntime(
        sched,
        config=config,
        network=Network(sched, lan=ConstantLatency(0.001)),
        system_store=store,
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    return runtime


class Durable(Actor):
    durable = True
    placement = "pinned"
    write_policy = WritePolicy.WRITE_THROUGH

    async def put(self, value):
        self.state["v"] = value
        self.mark_dirty()
        return value

    async def get(self):
        return self.state.get("v")


def client_cache(runtime) -> DirectoryCache:
    return runtime._directory_cache("client")


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------


def test_cache_unit_semantics():
    cache = DirectoryCache("client")
    key = ActorKey("Durable", "a")
    assert cache.get(key) is None
    cache.put(key, "silo-1")
    assert cache.get(key) == "silo-1"
    assert key in cache and len(cache) == 1
    cache.invalidate(key)
    assert cache.get(key) is None
    assert cache.stats.invalidations == 1
    cache.invalidate(key)  # absent: no double count
    assert cache.stats.invalidations == 1


def test_directory_unregister_invalidates_every_subscriber():
    directory = GrainDirectory()
    key = ActorKey("Durable", "a")
    caches = [DirectoryCache("client"), DirectoryCache("silo-0")]
    for cache in caches:
        directory.subscribe(cache)
        cache.put(key, "silo-1")
    directory.register(key, "silo-1")
    assert directory.unregister(key)
    for cache in caches:
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1


# ---------------------------------------------------------------------------
# Runtime integration
# ---------------------------------------------------------------------------


def test_repeat_sends_hit_the_cache():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(1)
        for _ in range(5):
            await ref.get()

    sched.run_until_complete(main())
    stats = client_cache(runtime).stats
    assert stats.hits >= 5
    assert stats.misses >= 1  # the first resolution


def test_disabled_cache_never_populates():
    sched = Scheduler()
    runtime = build_runtime(sched, cache=False)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(1)
        await ref.get()

    sched.run_until_complete(main())
    assert runtime._directory_caches == {}


def test_explicit_deactivation_invalidates_cached_route():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(2)
        assert ref.key in client_cache(runtime)
        await runtime.deactivate("Durable", "a")
        assert ref.key not in client_cache(runtime)
        # Reactivation repopulates through the authoritative directory.
        return await ref.get()

    assert sched.run_until_complete(main()) == 2


def test_detected_crash_invalidates_and_reroutes():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin(ActorKey("Durable", "a"), "silo-1")

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(3)
        assert client_cache(runtime).get(ref.key) == "silo-1"
        runtime.crash_silo("silo-1", detected=True)
        assert ref.key not in client_cache(runtime)
        # Next send re-places on the survivor and recovers persisted state.
        value = await ref.get()
        return value, runtime.directory.lookup(ref.key)

    value, placed = sched.run_until_complete(main())
    assert value == 3
    assert placed == "silo-0"


def test_undetected_crash_cached_route_fails_like_uncached():
    """A zombie silo's cached route must not change crash semantics.

    Until the lease lapses, membership vouches for the crashed silo, so the
    send fails with SiloUnavailableError — cache or no cache.  The cache
    hit-validates against the live silo and steps aside; it must never
    deliver to the dead endpoint.
    """
    sched = Scheduler()
    runtime = build_runtime(sched, lease=2.0)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(4)
        assert client_cache(runtime).get(ref.key) == "silo-1"
        runtime.crash_silo("silo-1", detected=False)
        with pytest.raises(SiloUnavailableError):
            await ref.get()
        # The validated hit was dropped; no stale route remains cached.
        assert ref.key not in client_cache(runtime)
        # After the lease lapses, on-demand repair re-places the actor.
        await sched.at(2.5)
        return await ref.get(), runtime.directory.lookup(ref.key)

    value, placed = sched.run_until_complete(main())
    assert value == 4
    assert placed == "silo-0"
    assert client_cache(runtime).get(ActorKey("Durable", "a")) == "silo-0"


def test_failure_detector_eviction_purges_cached_routes():
    """Chaos satellite: crash + failure-detector repair leaves no stale ref."""
    sched = Scheduler()
    runtime = build_runtime(
        sched,
        lease=2.0,
        failure_detection_interval=0.5,
        suspicion_grace=0.5,
    )
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")
    runtime.start()

    async def main():
        ref = runtime.ref("Durable", "b")
        await ref.put("survives")
        assert client_cache(runtime).get(ref.key) == "silo-1"
        runtime.crash_silo("silo-1", detected=False)
        # A resilient call issued *during* the outage window must land on
        # the repaired placement, never a stale cached silo.
        value = await ref.get(
            retry=RetryPolicy(max_attempts=10, base_delay=0.5, jitter=0.0)
        )
        return value, runtime.directory.lookup(ref.key)

    value, placed = sched.run_until_complete(main())
    assert value == "survives"
    assert placed == "silo-0"
    assert runtime.stats.silos_evicted == 1
    # The eviction funneled through GrainDirectory.unregister, so the old
    # route is gone from the client cache.
    assert client_cache(runtime).get(ActorKey("Durable", "b")) == "silo-0"


def test_idle_collection_invalidates_cached_route():
    sched = Scheduler()
    runtime = build_runtime(sched, idle_timeout=1.0, collection_interval=0.5)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(5)
        assert ref.key in client_cache(runtime)
        await sched.sleep(2.0)
        await runtime.collect_idle_activations()
        assert ref.key not in client_cache(runtime)
        return await ref.get()

    assert sched.run_until_complete(main()) == 5
