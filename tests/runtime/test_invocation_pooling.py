"""Invocation freelist semantics: recycling, scrubbing, and the fault latch.

The runtime recycles message envelopes (:class:`Invocation`) through a
bounded :class:`FreeList` on the two paths that are provably last to touch
them.  These tests pin the safety contract: recycled envelopes carry no
state from their previous use, results stay correct across heavy reuse,
and pooling latches off *forever* the moment a network fault injector is
attached (duplicated deliveries alias one envelope).
"""

import random

from repro.kernel import Scheduler
from repro.net.faults import NetworkFaultInjector
from repro.runtime import Actor, AodbRuntime, RuntimeConfig
from repro.runtime.runtime import _POOL_KEY


class Echo(Actor):
    async def echo(self, value, tag="t"):
        return (value, tag, self.actor_id)

    async def fire(self, value):
        return None


def _pooled_runtime(sched: Scheduler) -> AodbRuntime:
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        pool_invocations=True,
    )
    rt = AodbRuntime(sched, config=config)
    rt.add_silo("silo-1", cores=2)
    rt.register_actor(Echo)
    return rt


def test_ask_envelopes_are_recycled(sched):
    runtime = _pooled_runtime(sched)
    pool = runtime._invocation_pool

    async def main():
        ref = runtime.ref("Echo", "e1")
        for i in range(50):
            assert await ref.echo(i) == (i, "t", "e1")

    sched.run_until_complete(main())
    # After warm-up every ask reuses a shelved envelope instead of
    # allocating: far more hits than factory misses.
    assert pool.hits > 40
    assert pool.misses < 10


def test_recycled_envelope_is_fully_scrubbed(sched):
    runtime = _pooled_runtime(sched)
    pool = runtime._invocation_pool

    async def main():
        ref = runtime.ref("Echo", "e1")
        await ref.echo({"payload": [1, 2, 3]}, tag="secret")

    sched.run_until_complete(main())
    assert len(pool) > 0
    shelved = pool._items[-1]
    # Every field must match a factory-fresh envelope: no target, args,
    # kwargs, reply future, chain, span or deadline survives recycling.
    assert shelved.target is _POOL_KEY
    assert shelved.method == ""
    assert shelved.args == ()
    assert shelved.kwargs == {}
    assert shelved.caller_endpoint == ""
    assert shelved.one_way is False
    assert shelved.reply is None
    assert shelved.chain == ()
    assert shelved.deadline is None
    assert shelved.span is None


def test_reuse_does_not_cross_contaminate_results(sched):
    runtime = _pooled_runtime(sched)

    async def main():
        a = runtime.ref("Echo", "a")
        b = runtime.ref("Echo", "b")
        # Interleave asks and one-ways with distinct payloads so any field
        # bleeding through a recycled envelope would misroute or corrupt.
        for i in range(30):
            assert await a.echo(("a", i), tag=f"ta{i}") == (("a", i), f"ta{i}", "a")
            b.tell("fire", ("b", i))
            assert await b.echo(("b", i), tag=f"tb{i}") == (("b", i), f"tb{i}", "b")

    sched.run_until_complete(main())


def test_fault_injector_latches_pooling_off(sched):
    runtime = _pooled_runtime(sched)
    pool = runtime._invocation_pool

    async def warm():
        ref = runtime.ref("Echo", "e1")
        for i in range(10):
            await ref.echo(i)

    sched.run_until_complete(warm())
    assert pool.hits > 0

    runtime.network.inject_faults(
        NetworkFaultInjector(random.Random(3), loss_rate=0.0)
    )
    # Detaching does NOT clear the latch: a duplicate from the faulty era
    # could still be in flight.
    runtime.network.inject_faults(None)
    assert runtime.network.ever_faulted is True

    hits_before = pool.hits
    shelved_before = len(pool)

    async def after():
        ref = runtime.ref("Echo", "e1")
        for i in range(10):
            await ref.echo(i)

    sched.run_until_complete(after())
    # No envelope was acquired from or returned to the pool once faulted.
    assert pool.hits == hits_before
    assert len(pool) == shelved_before


def test_pooling_disabled_by_config(sched):
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        pool_invocations=False,
    )
    runtime = AodbRuntime(sched, config=config)
    runtime.add_silo("silo-1", cores=2)
    runtime.register_actor(Echo)

    async def main():
        ref = runtime.ref("Echo", "e1")
        for i in range(10):
            assert await ref.echo(i) == (i, "t", "e1")

    sched.run_until_complete(main())
    assert runtime._invocation_pool.hits == 0
    assert runtime._invocation_pool.misses == 0
    assert len(runtime._invocation_pool) == 0
