"""Batched delivery must not change per-message semantics.

The fast path coalesces same-path deliveries into envelopes; these tests
pin the regression surface the ISSUE calls out: per-sender FIFO, deadlines
and retries applying per message (not per envelope), and the cohort cost
amortization arithmetic.
"""

import pytest

from repro.errors import DeadlineExceededError
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig
from repro.runtime.resilience import RetryPolicy

LAN = 0.001
WINDOW = 0.05


def build_runtime(
    sched,
    *,
    overhead: float = 0.0,
    batching: bool = True,
    method_cost: float = 0.0,
):
    config = RuntimeConfig(
        default_method_cost=method_cost,
        activation_cost=0.0,
        enable_batching=batching,
        batch_max_delay=WINDOW,
        dispatch_overhead_cost=overhead,
    )
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(LAN))
    )
    runtime.add_silo("silo-0", cores=2)
    return runtime


class Recorder(Actor):
    async def on_activate(self):
        self.seen = []

    async def note(self, value):
        self.seen.append(value)

    async def log(self):
        return list(self.seen)


class Flaky(Actor):
    async def on_activate(self):
        self.attempts = {}

    async def work(self, tag, fail_first):
        count = self.attempts.get(tag, 0) + 1
        self.attempts[tag] = count
        if fail_first and count == 1:
            raise DeadlineExceededError(f"induced first-attempt failure: {tag}")
        return tag, count


def test_batched_tells_preserve_per_sender_fifo():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Recorder)

    async def main():
        ref = runtime.ref("Recorder", "r")
        # Bursts land in shared envelopes; gaps between bursts force
        # separate envelopes on the same path.
        sequence = list(range(12))
        for start in range(0, 12, 4):
            for value in sequence[start : start + 4]:
                ref.tell("note", value)
            await sched.sleep(WINDOW / 2)
        await sched.sleep(1.0)
        return await ref.log()

    assert sched.run_until_complete(main()) == list(range(12))


def test_deadline_applies_per_message_during_batch_delay():
    """A deadline shorter than the envelope window fails exactly on time."""
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Recorder)

    async def main():
        ref = runtime.ref("Recorder", "r")
        doomed = ref.ask("note", "doomed", deadline=WINDOW / 5)
        healthy = ref.ask("note", "healthy")
        with pytest.raises(DeadlineExceededError):
            await doomed
        failed_at = sched.now
        await healthy
        await sched.sleep(1.0)
        return failed_at, await ref.log()

    failed_at, log = sched.run_until_complete(main())
    # The failure fired at the deadline, not at envelope departure.
    assert failed_at == pytest.approx(WINDOW / 5)
    # The expired invocation was skipped on arrival; its envelope-mate ran.
    assert log == ["healthy"]
    assert runtime.stats.deadlines_exceeded == 1


def test_retry_applies_per_message_not_per_envelope():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Flaky)
    policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)

    async def main():
        ref = runtime.ref("Flaky", "f")
        # Same envelope: one member fails its first attempt, one succeeds.
        failing = ref.ask("work", "a", True, retry=policy)
        passing = ref.ask("work", "b", False, retry=policy)
        return await failing, await passing

    (tag_a, attempts_a), (tag_b, attempts_b) = sched.run_until_complete(main())
    # Only the failing member was re-sent; its envelope-mate ran once.
    assert (tag_a, attempts_a) == ("a", 2)
    assert (tag_b, attempts_b) == ("b", 1)


def test_cohort_shares_dispatch_overhead():
    """K envelope-mates each charge (cost - overhead) + overhead / K."""
    cost, overhead, cohort = 0.001, 0.0004, 4

    def run(with_overhead):
        sched = Scheduler()
        runtime = build_runtime(
            sched,
            overhead=overhead if with_overhead else 0.0,
            method_cost=cost,
        )
        runtime.register_actor(Recorder)

        async def main():
            ref = runtime.ref("Recorder", "r")
            tickets = [ref.ask("note", i) for i in range(cohort)]
            for ticket in tickets:
                await ticket
            await sched.sleep(1.0)

        sched.run_until_complete(main())
        return runtime.silo("silo-0").cpu.busy_seconds

    amortized = run(True)
    flat = run(False)
    assert flat == pytest.approx(cohort * cost)
    assert amortized == pytest.approx(
        cohort * ((cost - overhead) + overhead / cohort)
    )
    assert amortized < flat


def test_unbatched_runtime_charges_full_cost_per_message():
    """With batching off the overhead knob must not change charges."""
    cost = 0.001
    sched = Scheduler()
    runtime = build_runtime(
        sched, overhead=0.0004, batching=False, method_cost=cost
    )
    runtime.register_actor(Recorder)

    async def main():
        ref = runtime.ref("Recorder", "r")
        tickets = [ref.ask("note", i) for i in range(4)]
        for ticket in tickets:
            await ticket

    sched.run_until_complete(main())
    # cohort is 1 for every message, so the amortization is a no-op.
    assert runtime.silo("silo-0").cpu.busy_seconds == pytest.approx(4 * cost)
