"""Block-backed channel state under migration, drain, and crash.

The tiered window serializes into the ordinary actor-state document
(compressed blocks are plain bytes + scalars), so it must ride every
state-movement path the runtime has — live migration, silo drain, and
crash recovery — with no lost or duplicated points.
"""

import pytest

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import ActorKey, AodbRuntime, RuntimeConfig
from repro.shm import ShmPlatform, channel_id_for, sensor_id_for
from repro.storage import InMemoryKVStore


@pytest.fixture
def sched():
    return Scheduler()


def build_platform(sched, silos=2):
    config = RuntimeConfig(
        default_method_cost=0.0,
        activation_cost=0.0,
        idle_timeout=1000.0,
        collection_interval=100.0,
    )
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(
        sched, config=config, network=network,
        grain_storage=InMemoryKVStore(),
    )
    for index in range(1, silos + 1):
        runtime.add_silo(f"silo-{index}", cores=4)
    db = AodbDatabase(runtime)
    return ShmPlatform(db, window_capacity=256, block_size=16)


def ramp(count, t0=0.0):
    return [(t0 + i, 20.0 + (i % 5) * 0.25) for i in range(count)]


async def provision_one(platform):
    await platform.provision(total_sensors=1)
    sensor_id = sensor_id_for("org-0", 0)
    return sensor_id, channel_id_for(sensor_id, 0)


def test_migration_carries_sealed_blocks_exactly(sched):
    platform = build_platform(sched)
    runtime = platform.runtime

    async def main():
        sensor_id, c0 = await provision_one(platform)
        points = ramp(100)
        await platform.ingest(sensor_id, {c0: points})
        key = ActorKey("PhysicalSensorChannel", c0)
        source = runtime.directory.lookup(key)
        target = "silo-2" if source == "silo-1" else "silo-1"
        channel = runtime.ref("PhysicalSensorChannel", c0)
        before = await channel.storage_stats()
        assert await runtime.migrate(key, target) is True
        after = await channel.storage_stats()
        raw = await platform.raw_range(c0, 0.0, 1000.0)
        # The stream stays appendable on the new silo.
        await platform.ingest(sensor_id, {c0: ramp(10, t0=5000.0)})
        depth = await channel.depth()
        return points, before, after, raw, depth

    points, before, after, raw, depth = sched.run_until_complete(main())
    assert raw == points
    assert depth == 110
    # Blocks moved compressed: same tier shape, same compressed bytes.
    assert after["blocks"] == before["blocks"] == 6
    assert after["block_bytes"] == before["block_bytes"]
    assert runtime.stats.migrations == 1


def test_drain_relocates_block_backed_channels(sched):
    platform = build_platform(sched, silos=3)
    runtime = platform.runtime

    async def main():
        await platform.provision(total_sensors=4)
        streams = {}
        for sensor_index in range(4):
            sensor_id = sensor_id_for("org-0", sensor_index)
            c0 = channel_id_for(sensor_id, 0)
            streams[c0] = ramp(60)
            await platform.ingest(sensor_id, {c0: streams[c0]})
        drained = await runtime.drain_silo("silo-1")
        assert drained > 0
        results = {}
        for c0 in streams:
            results[c0] = await platform.raw_range(c0, 0.0, 1000.0)
            key = ActorKey("PhysicalSensorChannel", c0)
            assert runtime.directory.lookup(key) != "silo-1"
        return streams, results

    streams, results = sched.run_until_complete(main())
    for c0, points in streams.items():
        assert results[c0] == points


def test_crash_recovery_replays_journaled_blocks(sched):
    """The redo journal captures the tiered document (compressed blocks
    included) for lazily-flushed channels, so a hard crash recovers the
    whole window from the WAL."""
    platform = build_platform(sched)
    runtime = platform.runtime
    runtime.config.redo_lag = 0.5
    runtime.enable_redo_journal()

    async def main():
        sensor_id, c0 = await provision_one(platform)
        points = ramp(100)
        for offset in range(0, 100, 10):
            await platform.ingest(sensor_id, {c0: points[offset:offset + 10]})
        # Let the redo pump journal the dirty snapshot, then crash hard —
        # no deactivation hooks, no graceful flush.
        await sched.sleep(2.0)
        key = ActorKey("PhysicalSensorChannel", c0)
        victim = runtime.directory.lookup(key)
        runtime.crash_silo(victim)
        # The reactivated channel (on the survivor) re-opens the
        # journaled blocks: nothing lost, nothing duplicated.
        raw = await platform.raw_range(c0, 0.0, 1000.0)
        stats = await runtime.ref(
            "PhysicalSensorChannel", c0
        ).storage_stats()
        assert runtime.directory.lookup(key) != victim
        return points, raw, stats

    points, raw, stats = sched.run_until_complete(main())
    assert raw == points
    assert stats["points"] == 100
    assert stats["blocks"] > 0


def test_crash_without_flush_loses_only_unflushed_points(sched):
    """ON_DEACTIVATE (the paper's benchmark durability setting): a crash
    loses what was never snapshotted, and recovery falls back to the last
    persisted document rather than corrupting the stream."""
    platform = build_platform(sched)
    runtime = platform.runtime

    async def main():
        sensor_id, c0 = await provision_one(platform)
        flushed = ramp(50)
        await platform.ingest(sensor_id, {c0: flushed})
        # Deactivate → the 50-point window (3 sealed blocks + head) is
        # persisted; reactivate and add points that never get flushed.
        await runtime.deactivate("PhysicalSensorChannel", c0)
        await platform.ingest(sensor_id, {c0: ramp(10, t0=5000.0)})
        key = ActorKey("PhysicalSensorChannel", c0)
        victim = runtime.directory.lookup(key)
        runtime.crash_silo(victim)
        raw = await platform.raw_range(c0, 0.0, 10000.0)
        return flushed, raw

    flushed, raw = sched.run_until_complete(main())
    assert raw == flushed
