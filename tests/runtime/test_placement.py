"""Placement strategies and multi-silo behaviour."""

import random

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import (
    Actor,
    ActorKey,
    AodbRuntime,
    HashPlacement,
    PinnedPlacement,
    PreferLocalPlacement,
    RandomPlacement,
    RuntimeConfig,
)


class Echo(Actor):
    async def where(self):
        return self.context.silo_id


class LocalEcho(Echo):
    placement = "prefer_local"


class HashedEcho(Echo):
    placement = "hash"


class PinnedEcho(Echo):
    placement = "pinned"


def multi_runtime(sched, silos=4):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.001))
    runtime = AodbRuntime(sched, config=config, network=network)
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    runtime.register_actors([Echo, LocalEcho, HashedEcho, PinnedEcho])
    return runtime


# -- unit tests of the strategies themselves ---------------------------------------


def test_random_placement_spreads_load():
    strategy = RandomPlacement(random.Random(1))
    silos = ["a", "b", "c"]
    chosen = {
        strategy.choose(ActorKey("T", str(i)), "client", silos) for i in range(60)
    }
    assert chosen == {"a", "b", "c"}


def test_prefer_local_uses_caller_silo():
    strategy = PreferLocalPlacement(fallback=RandomPlacement(random.Random(1)))
    assert strategy.choose(ActorKey("T", "x"), "b", ["a", "b", "c"]) == "b"


def test_prefer_local_falls_back_for_external_callers():
    strategy = PreferLocalPlacement(fallback=RandomPlacement(random.Random(1)))
    chosen = strategy.choose(ActorKey("T", "x"), "client", ["a", "b"])
    assert chosen in ("a", "b")


def test_hash_placement_is_stable():
    strategy = HashPlacement()
    silos = ["a", "b", "c"]
    key = ActorKey("T", "some-id")
    first = strategy.choose(key, "client", silos)
    assert all(strategy.choose(key, "client", silos) == first for _ in range(5))


def test_hash_placement_distributes():
    strategy = HashPlacement()
    silos = ["a", "b", "c"]
    chosen = {
        strategy.choose(ActorKey("T", f"id-{i}"), "client", silos)
        for i in range(100)
    }
    assert chosen == {"a", "b", "c"}


def test_pinned_placement_exact_and_prefix():
    strategy = PinnedPlacement(fallback=HashPlacement())
    silos = ["a", "b"]
    strategy.pin(ActorKey("T", "special"), "b")
    strategy.pin_prefix("T/org-1/", "a")
    assert strategy.choose(ActorKey("T", "special"), "client", silos) == "b"
    assert strategy.choose(ActorKey("T", "org-1/x"), "client", silos) == "a"
    # Unpinned keys fall back.
    fallback = strategy.choose(ActorKey("T", "other"), "client", silos)
    assert fallback in silos


def test_pinned_placement_ignores_dead_silo():
    strategy = PinnedPlacement(fallback=HashPlacement())
    strategy.pin(ActorKey("T", "x"), "dead-silo")
    assert strategy.choose(ActorKey("T", "x"), "client", ["a"]) == "a"


# -- integration through the runtime ---------------------------------------------


def test_actors_spread_over_silos(sched):
    runtime = multi_runtime(sched)

    async def main():
        hosts = set()
        for i in range(40):
            hosts.add(await runtime.ref("Echo", f"e{i}").where())
        return hosts

    hosts = sched.run_until_complete(main())
    assert len(hosts) >= 3  # random placement touches most silos


def test_prefer_local_colocates_chains(sched):
    runtime = multi_runtime(sched)

    class Parent(Actor):
        async def spawn_child(self, child_id):
            child = self.context.actor("LocalEcho", child_id)
            return self.context.silo_id, await child.where()

    runtime.register_actor(Parent)

    async def main():
        pairs = []
        for i in range(10):
            pairs.append(await runtime.ref("Parent", f"p{i}").spawn_child(f"c{i}"))
        return pairs

    pairs = sched.run_until_complete(main())
    assert all(parent == child for parent, child in pairs)


def test_hash_placement_reactivates_on_same_silo(sched):
    runtime = multi_runtime(sched)

    async def main():
        ref = runtime.ref("HashedEcho", "stable-id")
        first = await ref.where()
        await runtime.deactivate("HashedEcho", "stable-id")
        second = await ref.where()
        return first, second

    first, second = sched.run_until_complete(main())
    assert first == second


def test_runtime_pinning_controls_placement(sched):
    runtime = multi_runtime(sched)
    runtime.pinned_placement.pin_prefix("PinnedEcho/org-2/", "silo-2")

    async def main():
        return await runtime.ref("PinnedEcho", "org-2/sensor-9").where()

    assert sched.run_until_complete(main()) == "silo-2"


def test_unknown_strategy_name_fails(sched):
    runtime = multi_runtime(sched)

    class Misconfigured(Actor):
        placement = "nonsense"

        async def ping(self):
            return 1

    runtime.register_actor(Misconfigured)

    async def main():
        with pytest.raises(ValueError, match="unknown placement strategy"):
            await runtime.ref("Misconfigured", "m").ping()

    sched.run_until_complete(main())


def test_no_silos_raises(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config)
    runtime.register_actor(Echo)

    from repro.errors import SiloUnavailableError

    async def main():
        with pytest.raises(SiloUnavailableError):
            await runtime.ref("Echo", "e").where()

    sched.run_until_complete(main())


def test_shutdown_silo_moves_future_activations(sched):
    runtime = multi_runtime(sched, silos=2)

    async def main():
        # Force an actor onto silo-0 via pinning, then retire silo-0.
        runtime.pinned_placement.pin(ActorKey("PinnedEcho", "x"), "silo-0")
        ref = runtime.ref("PinnedEcho", "x")
        first = await ref.where()
        await runtime.shutdown_silo("silo-0")
        second = await ref.where()
        return first, second

    first, second = sched.run_until_complete(main())
    assert first == "silo-0"
    assert second == "silo-1"


def test_remote_calls_cost_lan_latency_local_calls_do_not(sched):
    runtime = multi_runtime(sched, silos=2)

    class Chatty(Actor):
        placement = "pinned"

        async def call_peer(self, peer_id, times):
            peer = self.context.actor("Chatty", peer_id)
            start = self.context.now
            for _ in range(times):
                await peer.noop()
            return self.context.now - start

        async def noop(self):
            return None

    runtime.register_actor(Chatty)
    runtime.pinned_placement.pin(ActorKey("Chatty", "a"), "silo-0")
    runtime.pinned_placement.pin(ActorKey("Chatty", "near"), "silo-0")
    runtime.pinned_placement.pin(ActorKey("Chatty", "far"), "silo-1")

    async def main():
        ref = runtime.ref("Chatty", "a")
        local_time = await ref.call_peer("near", 10)
        remote_time = await ref.call_peer("far", 10)
        return local_time, remote_time

    local_time, remote_time = sched.run_until_complete(main())
    # 10 remote round trips at 1ms per hop = 20ms; local round trips free.
    assert local_time == pytest.approx(0.0)
    assert remote_time == pytest.approx(0.020)
