"""Storage failures during state flush must never kill an activation."""

import pytest

from repro.errors import ThrottlingError
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig, WritePolicy
from repro.storage import InMemoryKVStore


class FlakyStore(InMemoryKVStore):
    """Fails the first ``failures`` writes, then behaves normally."""

    def __init__(self, failures):
        super().__init__()
        self.failures = failures
        self.attempts = 0

    async def put(self, key, value, expected_etag=None):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise ThrottlingError("synthetic storage failure")
        return await super().put(key, value, expected_etag)


def build(sched, store, policy, interval=5.0):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(
        sched,
        config=config,
        grain_storage=store,
        network=Network(sched, lan=ConstantLatency(0.0)),
    )
    runtime.add_silo("s1", cores=2)

    class Durable(Actor):
        durable = True
        write_policy = policy
        write_interval_seconds = interval

        async def put(self, value):
            self.state["v"] = value
            self.mark_dirty()
            return value

        async def get(self):
            return self.state.get("v")

    runtime.register_actor(Durable)
    return runtime


def test_write_through_flush_failure_reaches_caller_and_actor_survives():
    sched = Scheduler()
    store = FlakyStore(failures=1)
    runtime = build(sched, store, WritePolicy.WRITE_THROUGH)

    async def main():
        ref = runtime.ref("Durable", "d")
        with pytest.raises(ThrottlingError):
            await ref.put(1)  # flush fails: no false durability ack
        # The activation keeps serving; the retry persists.
        await ref.put(2)
        return (await store.get("state/Durable/d")).value

    assert sched.run_until_complete(main()) == {"v": 2}
    assert runtime.stats.errors == 1


def test_interval_flush_failure_retries_next_tick():
    sched = Scheduler()
    store = FlakyStore(failures=1)
    runtime = build(sched, store, WritePolicy.INTERVAL, interval=5.0)

    async def main():
        ref = runtime.ref("Durable", "d")
        await ref.put(7)
        await sched.sleep(5.5)   # first interval flush fails
        assert store.writes == 0
        await sched.sleep(5.0)   # second interval flush succeeds
        return store.writes, await ref.get()

    writes, value = sched.run_until_complete(main())
    assert writes == 1
    assert value == 7
    assert runtime.stats.errors == 1


def test_flush_failure_on_deactivate_is_contained():
    sched = Scheduler()
    store = FlakyStore(failures=1)
    runtime = build(sched, store, WritePolicy.ON_DEACTIVATE)

    async def main():
        ref = runtime.ref("Durable", "d")
        await ref.put(3)
        # The deactivation flush fails, but deactivation completes and the
        # failure is accounted; state is lost (loudly), not wedged.
        assert await runtime.deactivate("Durable", "d") is True
        return await ref.get()

    assert sched.run_until_complete(main()) is None
    assert runtime.stats.activation_failures == 1
