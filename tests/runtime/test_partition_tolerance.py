"""Partition tolerance: quarantine, rejoin, quorum-gated eviction, fencing."""

import pytest

from repro.errors import (
    ConditionalCheckFailedError,
    QuarantinedSiloError,
    SiloUnavailableError,
)
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network, PartitionInjector
from repro.runtime import Actor, AodbRuntime, RuntimeConfig, WritePolicy
from repro.runtime.runtime import SYSTEM_STORE_ENDPOINT
from repro.storage import InMemoryKVStore, SystemStore


class DurableNote(Actor):
    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE

    async def set(self, value):
        self.state["value"] = value
        self.mark_dirty()
        return value

    async def get(self):
        return self.state.get("value")


@pytest.fixture
def sched():
    return Scheduler()


def build(sched, silos=1, lease_seconds=1.0, **config_kwargs):
    config = RuntimeConfig(
        default_method_cost=0.0, activation_cost=0.0, **config_kwargs
    )
    runtime = AodbRuntime(
        sched,
        config=config,
        grain_storage=InMemoryKVStore(),
        network=Network(sched, lan=ConstantLatency(0.0)),
        system_store=SystemStore(sched, lease_seconds=lease_seconds),
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i + 1}", cores=2)
    runtime.register_actor(DurableNote)
    return runtime


def test_quarantine_parks_activations_and_scram_flushes(sched):
    runtime = build(sched)
    store = runtime.grain_storage

    async def main():
        ref = runtime.ref("DurableNote", "n")
        await ref.set("precious")
        assert store.writes == 0  # ON_DEACTIVATE: nothing flushed yet
        parked = await runtime.quarantine_silo("silo-1")
        assert parked == 1
        # The scram flush made the dirty state durable before parking.
        item = await store.get("state/DurableNote/n")
        assert item.value["value"] == "precious"
        assert runtime.silo("silo-1").quarantined
        assert runtime.stats.silos_quarantined == 1
        # Every activation is parked with the retryable quarantine fault.
        for activation in runtime.silo("silo-1").activations():
            assert isinstance(activation.parked, QuarantinedSiloError)

    sched.run_until_complete(main())


def test_rejoin_aborts_stale_activations_and_bumps_epoch(sched):
    runtime = build(sched)

    async def main():
        ref = runtime.ref("DurableNote", "n")
        await ref.set("v1")
        await runtime.quarantine_silo("silo-1")
        epoch_before = runtime.system_store.epoch
        assert runtime.rejoin_silo("silo-1") is True
        assert runtime.system_store.epoch > epoch_before
        assert not runtime.silo("silo-1").quarantined
        assert runtime.stats.silos_rejoined == 1
        # The silo serves again, and the scram-flushed state is intact.
        return await ref.get()

    assert sched.run_until_complete(main()) == "v1"


def test_acquire_fence_fails_on_quarantined_or_partitioned_silo(sched):
    runtime = build(sched)

    async def main():
        await runtime.quarantine_silo("silo-1")
        # A quarantined silo cannot prove membership, so durable grains
        # cannot activate on it: the activation attempt fails loudly.
        with pytest.raises(SiloUnavailableError):
            await runtime.ref("DurableNote", "fresh").set("x")

    sched.run_until_complete(main())


def test_lease_loss_quarantines_and_heal_rejoins(sched):
    # End-to-end through the heartbeat loop: a silo partitioned away from
    # the system store self-quarantines once its lease lapses, then rejoins
    # (fresh epoch) when the partition heals.
    runtime = build(sched, lease_seconds=1.0)
    runtime.network.inject_partitions(
        PartitionInjector([([{"silo-1"}, {SYSTEM_STORE_ENDPOINT}], 0.0, 5.0)])
    )

    async def main():
        await sched.at(3.0)
        assert runtime.silo("silo-1").quarantined
        assert runtime.stats.silos_quarantined == 1
        await sched.at(7.0)
        assert not runtime.silo("silo-1").quarantined
        assert runtime.stats.silos_rejoined == 1
        return await runtime.ref("DurableNote", "n").set("after-heal")

    assert sched.run_until_complete(main()) == "after-heal"


def test_eviction_requires_a_quorum_of_live_voters(sched):
    # All three silos lose sight of the store: every lease lapses, no quorum
    # of active rows exists, and the failure detector must refuse to evict.
    runtime = build(
        sched,
        silos=3,
        lease_seconds=1.0,
        quarantine_on_lease_loss=False,
        suspicion_grace=0.5,
    )
    everyone = {"silo-1", "silo-2", "silo-3"}
    runtime.network.inject_partitions(
        PartitionInjector([([everyone, {SYSTEM_STORE_ENDPOINT}], 0.0, 100.0)])
    )

    async def main():
        await sched.at(10.0)  # far past lease + grace for every row
        return runtime.evict_dead_silos()

    assert sched.run_until_complete(main()) == []
    assert runtime.stats.silos_evicted == 0
    assert runtime.stats.silos_suspected == 3


def test_majority_evicts_partitioned_minority(sched):
    # Two of three silos keep their leases: quorum holds, the minority row
    # is retired via epoch CAS, and the cluster-side view is repaired.
    runtime = build(
        sched,
        silos=3,
        lease_seconds=1.0,
        quarantine_on_lease_loss=False,
        suspicion_grace=0.5,
    )
    runtime.network.inject_partitions(
        PartitionInjector([([{"silo-3"}, {SYSTEM_STORE_ENDPOINT}], 0.0, 100.0)])
    )

    async def main():
        await sched.at(10.0)
        return runtime.evict_dead_silos()

    assert sched.run_until_complete(main()) == ["silo-3"]
    assert runtime.stats.silos_evicted == 1
    assert runtime.system_store.status_of("silo-3") == "dead"
    # Zombie shape: the partitioned silo's process is still there, only the
    # cluster-side view was repaired.
    assert "silo-3" in [s.silo_id for s in runtime.silos()]


def test_retire_epoch_cas_rejects_stale_view_changes(sched):
    store = SystemStore(sched, lease_seconds=1.0)
    store.announce("a")
    store.announce("b")
    stale_epoch = store.epoch
    store.announce("c")  # a concurrent view change moves the epoch
    with pytest.raises(ConditionalCheckFailedError):
        store.retire("a", expected_epoch=stale_epoch)
    assert store.status_of("a") == "active"
    store.retire("a", expected_epoch=store.epoch)
    assert store.status_of("a") == "dead"


def test_zombie_scram_flush_bounces_off_the_fence_floor(sched):
    # A successor has already taken over (higher fence on the storage key):
    # the quarantining zombie's scram flush must be rejected, silently, and
    # the successor's document must survive.
    runtime = build(sched)
    store = runtime.grain_storage

    async def main():
        ref = runtime.ref("DurableNote", "n")
        await ref.set("zombie-view")
        key = "state/DurableNote/n"
        successor_fence = runtime.system_store.acquire_fence(key)
        await store.advance_fence(key, successor_fence)
        await store.fenced_put(key, {"value": "successor"}, fence=successor_fence)
        await runtime.quarantine_silo("silo-1")
        item = await store.get(key)
        return item.value, store.fenced_writes

    value, fenced = sched.run_until_complete(main())
    assert value == {"value": "successor"}
    assert fenced >= 1
