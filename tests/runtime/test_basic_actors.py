"""Core virtual-actor behaviour: activation on demand, calls, state."""

import pytest

from repro.errors import ActorMethodError, UnknownActorTypeError
from repro.runtime import Actor, ActorKey, actor_method


class Counter(Actor):
    """Minimal stateful actor used across these tests."""

    def __init__(self, context):
        super().__init__(context)
        self.count = 0

    async def increment(self, by=1):
        self.count += by
        return self.count

    async def read(self):
        return self.count

    async def whoami(self):
        return self.actor_id


class Greeter(Actor):
    async def greet(self, name):
        return f"hello {name}"


def test_actor_key_forms():
    key = ActorKey("Cow", "dk-1")
    assert key.qualified() == "Cow/dk-1"
    assert ActorKey.parse("Cow/dk-1") == key
    assert ActorKey.parse("Cow/a/b").actor_id == "a/b"
    assert key.storage_key() == "state/Cow/dk-1"
    with pytest.raises(ValueError):
        ActorKey("", "x")
    with pytest.raises(ValueError):
        ActorKey("Has/Slash", "x")
    with pytest.raises(ValueError):
        ActorKey("Cow", "")
    with pytest.raises(ValueError):
        ActorKey.parse("no-separator")


def test_call_activates_on_demand(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        assert runtime.total_activations() == 0
        value = await ref.increment()
        assert runtime.total_activations() == 1
        return value

    assert sched.run_until_complete(main()) == 1
    assert runtime.stats.activations_created == 1


def test_state_persists_across_calls_to_same_actor(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c1")
        await ref.increment()
        await ref.increment(5)
        return await ref.read()

    assert sched.run_until_complete(main()) == 6


def test_distinct_ids_are_distinct_actors(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        a = runtime.ref("Counter", "a")
        b = runtime.ref("Counter", "b")
        await a.increment(10)
        await b.increment(1)
        return await a.read(), await b.read()

    assert sched.run_until_complete(main()) == (10, 1)
    assert runtime.total_activations() == 2


def test_actor_knows_its_identity(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        return await runtime.ref("Counter", "my-id").whoami()

    assert sched.run_until_complete(main()) == "my-id"


def test_args_and_kwargs_are_forwarded(sched, runtime):
    runtime.register_actor(Greeter)

    async def main():
        ref = runtime.ref("Greeter", "g")
        return await ref.greet(name="world")

    assert sched.run_until_complete(main()) == "hello world"


def test_unknown_actor_type_fails_fast(runtime):
    with pytest.raises(UnknownActorTypeError):
        runtime.ref("Nope", "x")


def test_unknown_method_rejects_reply(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        with pytest.raises(ActorMethodError):
            await runtime.ref("Counter", "c").no_such_method()

    sched.run_until_complete(main())
    assert runtime.stats.errors == 1


def test_private_methods_not_callable(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        with pytest.raises(ActorMethodError):
            await runtime.ref("Counter", "c").ask("_attach_state_cell", None)

    sched.run_until_complete(main())


def test_method_exception_propagates_to_caller(sched, runtime):
    class Exploder(Actor):
        async def boom(self):
            raise ValueError("inner failure")

        async def ok(self):
            return "fine"

    runtime.register_actor(Exploder)

    async def main():
        ref = runtime.ref("Exploder", "e")
        with pytest.raises(ValueError, match="inner failure"):
            await ref.boom()
        # The activation survives a method failure.
        return await ref.ok()

    assert sched.run_until_complete(main()) == "fine"


def test_tell_is_fire_and_forget(sched, runtime):
    runtime.register_actor(Counter)

    async def main():
        ref = runtime.ref("Counter", "c")
        receipt = ref.tell("increment", 3)
        assert receipt.target.actor_id == "c"
        await sched.sleep(1)
        return await ref.read()

    assert sched.run_until_complete(main()) == 3
    assert runtime.stats.tells == 1


def test_message_payloads_are_isolated(sched, runtime):
    class Holder(Actor):
        def __init__(self, context):
            super().__init__(context)
            self.data = None

        async def store(self, payload):
            self.data = payload
            return True

        async def mutate(self):
            self.data["x"] = 999
            return self.data

    runtime.register_actor(Holder)

    async def main():
        ref = runtime.ref("Holder", "h")
        payload = {"x": 1}
        await ref.store(payload)
        payload["x"] = 2  # caller-side mutation must not reach the actor
        inside = await ref.mutate()
        return payload, inside

    caller_side, actor_side = sched.run_until_complete(main())
    assert caller_side == {"x": 2}
    assert actor_side == {"x": 999}


def test_actor_to_actor_calls(sched, runtime):
    class Relay(Actor):
        async def relay(self, target_id, amount):
            counter = self.context.actor("Counter", target_id)
            return await counter.increment(amount)

    runtime.register_actor(Counter)
    runtime.register_actor(Relay)

    async def main():
        relay = runtime.ref("Relay", "r")
        await relay.relay("c9", 7)
        return await runtime.ref("Counter", "c9").read()

    assert sched.run_until_complete(main()) == 7


def test_register_actor_rejects_non_actor(runtime):
    with pytest.raises(TypeError):
        runtime.register_actor(object)  # type: ignore[arg-type]


def test_register_actor_name_collision(runtime):
    runtime.register_actor(Counter)
    runtime.register_actor(Counter)  # same class re-registered: fine

    class Other(Actor):
        pass

    with pytest.raises(ValueError):
        runtime.register_actor(Other, name="Counter")


def test_actor_method_decorator_requires_async():
    with pytest.raises(TypeError):

        class Bad(Actor):
            @actor_method(cost=1)
            def not_async(self):  # type: ignore[misc]
                return None


def test_exposed_methods_excludes_lifecycle_and_private():
    exposed = Counter.exposed_methods()
    assert "increment" in exposed
    assert "read" in exposed
    assert "on_activate" not in exposed
    assert "write_state" not in exposed
