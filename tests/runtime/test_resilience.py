"""Fault-tolerance layer: deadlines, retries, circuit breaking, detection."""

import random

import pytest

from repro.errors import (
    CancelledError,
    DeadlineExceededError,
    SiloUnavailableError,
    ThrottledError,
)
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network, NetworkFaultInjector
from repro.runtime import (
    Actor,
    AodbRuntime,
    CircuitBreaker,
    NO_RETRY,
    RetryPolicy,
    RuntimeConfig,
    WritePolicy,
)
from repro.storage import SystemStore

FAST = RetryPolicy(max_attempts=5, base_delay=0.05, jitter=0.0)


def build_runtime(sched, silos=1, lease=None, **config_kwargs):
    config = RuntimeConfig(
        default_method_cost=0.0, activation_cost=0.0, **config_kwargs
    )
    store = (
        SystemStore(sched, lease_seconds=lease) if lease is not None else None
    )
    runtime = AodbRuntime(
        sched,
        config=config,
        network=Network(sched, lan=ConstantLatency(0.001)),
        system_store=store,
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    return runtime


class Slow(Actor):
    executed = 0

    async def work(self, seconds):
        await self.context.runtime.scheduler.sleep(seconds)
        type(self).executed += 1
        return "done"


class Flaky(Actor):
    failures = 0

    async def work(self):
        cls = type(self)
        if cls.failures > 0:
            cls.failures -= 1
            raise ThrottledError("simulated overload", retry_after=0.01)
        return "recovered"


# ---------------------------------------------------------------------------
# RetryPolicy (pure policy logic)
# ---------------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0).validate()
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5).validate()
    with pytest.raises(ValueError):
        RetryPolicy(attempt_timeout=0.0).validate()
    RetryPolicy().validate()


def test_retry_policy_should_retry():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(SiloUnavailableError("x"), 1)
    assert policy.should_retry(ThrottledError("x"), 2)
    assert not policy.should_retry(SiloUnavailableError("x"), 3)  # exhausted
    assert not policy.should_retry(RuntimeError("x"), 1)  # not transient


def test_retry_policy_backoff_and_retry_after():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0)
    rng = random.Random(0)
    assert policy.delay_for(1, rng) == pytest.approx(0.1)
    assert policy.delay_for(2, rng) == pytest.approx(0.2)
    assert policy.delay_for(5, rng) == pytest.approx(0.3)  # capped
    hint = ThrottledError("wait", retry_after=0.9)
    assert policy.delay_for(1, rng, hint) == pytest.approx(0.9)  # floor wins


# ---------------------------------------------------------------------------
# Call deadlines
# ---------------------------------------------------------------------------


def test_deadline_fails_slow_call():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Slow)

    async def main():
        with pytest.raises(DeadlineExceededError):
            await runtime.ref("Slow", "a").work(1.0, deadline=0.1)

    sched.run_until_complete(main())
    assert runtime.stats.deadlines_exceeded == 1
    assert sched.now == pytest.approx(0.1)  # failed at the deadline, not at 1s


def test_deadline_skips_expired_queued_invocation():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Slow)
    Slow.executed = 0

    async def main():
        ref = runtime.ref("Slow", "q")
        first = ref.work(1.0)  # occupies the single-threaded actor
        await sched.sleep(0.01)
        with pytest.raises(DeadlineExceededError):
            await ref.work(1.0, deadline=0.5)  # still queued at t=0.5
        await first

    sched.run_until_complete(main())
    # The expired invocation never executed: only the first call ran.
    assert Slow.executed == 1


def test_config_default_deadline_applies():
    sched = Scheduler()
    runtime = build_runtime(sched, default_call_deadline=0.2)
    runtime.register_actor(Slow)

    async def main():
        with pytest.raises(DeadlineExceededError):
            await runtime.ref("Slow", "d").work(5.0)

    sched.run_until_complete(main())
    assert sched.now == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# Retries
# ---------------------------------------------------------------------------


def test_retry_recovers_from_transient_errors():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Flaky)
    Flaky.failures = 2

    async def main():
        return await runtime.ref("Flaky", "f").work(retry=FAST)

    assert sched.run_until_complete(main()) == "recovered"
    assert runtime.stats.calls_retried == 2


def test_retry_gives_up_after_max_attempts():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Flaky)
    Flaky.failures = 99

    async def main():
        with pytest.raises(ThrottledError):
            await runtime.ref("Flaky", "g").work(
                retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)
            )

    sched.run_until_complete(main())
    assert runtime.stats.calls_retried == 2  # 3 attempts = 2 retries


def test_non_retryable_errors_surface_immediately():
    sched = Scheduler()
    runtime = build_runtime(sched)

    class Broken(Actor):
        calls = 0

        async def work(self):
            type(self).calls += 1
            raise RuntimeError("logic bug")

    runtime.register_actor(Broken)

    async def main():
        with pytest.raises(RuntimeError):
            await runtime.ref("Broken", "b").work(retry=FAST)

    sched.run_until_complete(main())
    assert Broken.calls == 1
    assert runtime.stats.calls_retried == 0


def test_no_retry_policy_is_single_attempt():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Flaky)
    Flaky.failures = 1

    async def main():
        with pytest.raises(ThrottledError):
            await runtime.ref("Flaky", "n").work(retry=NO_RETRY)

    sched.run_until_complete(main())
    assert runtime.stats.calls_retried == 0


def test_with_options_makes_method_stubs_resilient():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Flaky)
    Flaky.failures = 1

    async def main():
        ref = runtime.ref("Flaky", "w").with_options(retry=FAST)
        return await ref.work()  # plain stub call, policy applied underneath

    assert sched.run_until_complete(main()) == "recovered"
    assert runtime.stats.calls_retried == 1


def test_config_default_retry_policy_applies():
    sched = Scheduler()
    runtime = build_runtime(sched, default_retry_policy=FAST)
    runtime.register_actor(Flaky)
    Flaky.failures = 1

    async def main():
        return await runtime.ref("Flaky", "c").work()

    assert sched.run_until_complete(main()) == "recovered"
    assert runtime.stats.calls_retried == 1


def test_attempt_timeout_turns_lost_messages_into_retries():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Slow)
    # Drop every message in the first 50 ms, then heal.
    runtime.network.inject_faults(
        NetworkFaultInjector(random.Random(1), loss_rate=1.0, start=0.0, end=0.05)
    )

    async def main():
        return await runtime.ref("Slow", "lost").work(
            0.0,
            retry=RetryPolicy(
                max_attempts=4, base_delay=0.05, jitter=0.0, attempt_timeout=0.1
            ),
        )

    assert sched.run_until_complete(main()) == "done"
    assert runtime.stats.deadlines_exceeded >= 1  # the lost attempt
    assert runtime.stats.calls_retried >= 1
    assert runtime.network.stats.lost_messages >= 1


# ---------------------------------------------------------------------------
# Failure detection and eviction
# ---------------------------------------------------------------------------


class Durable(Actor):
    durable = True
    write_policy = WritePolicy.WRITE_THROUGH
    placement = "pinned"

    async def put(self, value):
        self.state["v"] = value
        self.mark_dirty()
        return value

    async def get(self):
        return self.state.get("v")


def crash_setup(sched, lease=2.0, **config_kwargs):
    runtime = build_runtime(sched, silos=2, lease=lease, **config_kwargs)
    runtime.register_actor(Durable)
    runtime.pinned_placement.pin_prefix("Durable/", "silo-1")
    return runtime


def test_silent_crash_fails_fast_until_lease_lapses():
    sched = Scheduler()
    runtime = crash_setup(sched)

    async def main():
        ref = runtime.ref("Durable", "a")
        await ref.put(41)
        runtime.crash_silo("silo-1", detected=False)
        # Membership still vouches for the zombie: calls fail fast.
        with pytest.raises(SiloUnavailableError):
            await ref.get()
        assert runtime.system_store.status_of("silo-1") == "active"
        # Once the lease lapses, on-demand repair re-places the actor on
        # the surviving silo and recovers its write-through state.
        await sched.at(2.5)
        assert runtime.system_store.status_of("silo-1") == "suspected"
        return await ref.get()

    assert sched.run_until_complete(main()) == 41
    assert runtime.stats.activations_crashed == 1
    assert runtime.directory.lookup(runtime.ref("Durable", "a").key) == "silo-0"


def test_failure_detector_evicts_and_replaces():
    sched = Scheduler()
    runtime = crash_setup(
        sched,
        lease=2.0,
        failure_detection_interval=0.5,
        suspicion_grace=0.5,
    )
    runtime.start()

    async def main():
        ref = runtime.ref("Durable", "b")
        await ref.put("survives")
        runtime.crash_silo("silo-1", detected=False)
        # lease (2s) + grace (0.5s) + a detection period of slack
        await sched.at(sched.now + 4.0)
        return await ref.get()

    assert sched.run_until_complete(main()) == "survives"
    assert runtime.stats.silos_suspected >= 1
    assert runtime.stats.silos_evicted == 1
    assert runtime.stats.activations_replaced >= 1
    assert runtime.system_store.status_of("silo-1") == "dead"
    assert "silo-1" not in [s.silo_id for s in runtime.silos()]


def test_retried_call_rides_through_a_crash():
    """Satellite: a resilient ask spans crash -> detection -> re-activation."""
    sched = Scheduler()
    runtime = crash_setup(
        sched,
        lease=1.0,
        failure_detection_interval=0.25,
        suspicion_grace=0.25,
    )
    runtime.start()

    async def main():
        ref = runtime.ref("Durable", "c")
        await ref.put(7)
        runtime.crash_silo("silo-1", detected=False)
        # The very next call succeeds despite the outage window: retries
        # absorb the SiloUnavailableError until repair, then the re-placed
        # activation loads the persisted state.
        return await ref.get(
            retry=RetryPolicy(max_attempts=10, base_delay=0.2, jitter=0.0)
        )

    assert sched.run_until_complete(main()) == 7
    assert runtime.stats.calls_retried >= 1
    assert runtime.stats.activations_crashed == 1
    assert runtime.directory.lookup(runtime.ref("Durable", "c").key) == "silo-0"


def test_reminders_refire_after_crash_recovery():
    sched = Scheduler()

    class Pinger(Actor):
        durable = True
        write_policy = WritePolicy.WRITE_THROUGH
        placement = "pinned"
        fired = 0

        async def arm(self):
            self.context.register_reminder("tick", 1.0)

        async def receive_reminder(self, name):
            type(self).fired += 1

    runtime = build_runtime(
        sched,
        silos=2,
        lease=1.0,
        failure_detection_interval=0.25,
        suspicion_grace=0.25,
        reminder_tick=0.5,
    )
    runtime.register_actor(Pinger)
    runtime.pinned_placement.pin_prefix("Pinger/", "silo-1")
    runtime.start()
    Pinger.fired = 0

    async def main():
        await runtime.ref("Pinger", "p").arm()
        await sched.at(2.2)
        fired_before = Pinger.fired
        assert fired_before >= 1
        runtime.crash_silo("silo-1", detected=False)
        await sched.at(7.0)  # eviction + several reminder periods
        return fired_before

    fired_before = sched.run_until_complete(main())
    # Reminders live in the system store, so they survived the crash and
    # keep firing against the re-placed activation on the surviving silo.
    assert Pinger.fired > fired_before
    assert runtime.stats.silos_evicted == 1


def test_detected_crash_keeps_existing_semantics():
    sched = Scheduler()
    runtime = crash_setup(sched)

    async def main():
        ref = runtime.ref("Durable", "d")
        await ref.put(3)
        lost = runtime.crash_silo("silo-1")  # detected: immediate cleanup
        assert lost == 1
        return await ref.get()  # re-places without any retry needed

    assert sched.run_until_complete(main()) == 3
    assert runtime.stats.activations_crashed == 1


# ---------------------------------------------------------------------------
# Activation.abort
# ---------------------------------------------------------------------------


def test_abort_fails_queued_calls_with_the_fault():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Slow)

    async def main():
        ref = runtime.ref("Slow", "abort-me")
        inflight = ref.work(10.0)
        await sched.sleep(0.01)
        queued = ref.work(10.0)
        await sched.sleep(0.01)
        activation = runtime.silo("silo-0").get_activation(ref.key)
        fault = SiloUnavailableError("yanked")
        activation.abort(fault)
        assert activation.closed.is_set()
        assert activation.broken is fault
        # Queued requests fail with the fault; the in-flight turn is torn
        # down mid-execution, which surfaces as a cancellation.
        with pytest.raises(SiloUnavailableError):
            await queued
        with pytest.raises(CancelledError):
            await inflight

    sched.run_until_complete(main())


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def test_circuit_breaker_lifecycle():
    sched = Scheduler()
    breaker = CircuitBreaker(sched, failure_threshold=3, reset_timeout=1.0)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.allow()
    breaker.record_failure()  # third consecutive failure trips it
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.seconds_until_probe() == pytest.approx(1.0)
    assert breaker.opens == 1

    async def main():
        await sched.sleep(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()
        breaker.record_failure()  # failed probe re-opens the full window
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        await sched.sleep(1.0)
        breaker.record_success()  # successful probe closes it
        assert breaker.state == CircuitBreaker.CLOSED

    sched.run_until_complete(main())


def test_circuit_breaker_validation():
    sched = Scheduler()
    with pytest.raises(ValueError):
        CircuitBreaker(sched, failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(sched, reset_timeout=0.0)
