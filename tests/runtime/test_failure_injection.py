"""Failure injection: the runtime must degrade loudly, not silently."""

import pytest

from repro.errors import (
    ActorDeactivatedError,
    SiloUnavailableError,
    UnknownActorTypeError,
)
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, ActorKey, AodbRuntime, RuntimeConfig


def build_runtime(sched, silos=1):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.001))
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    return runtime


class Stateful(Actor):
    durable = True

    async def put(self, value):
        self.state["v"] = value
        self.mark_dirty()
        return value

    async def get(self):
        return self.state.get("v")


def test_method_failure_does_not_poison_later_messages(sched=None):
    sched = Scheduler()
    runtime = build_runtime(sched)

    class Half(Actor):
        async def work(self, fail):
            if fail:
                raise RuntimeError("injected")
            return "ok"

    runtime.register_actor(Half)

    async def main():
        ref = runtime.ref("Half", "h")
        outcomes = []
        for fail in (True, False, True, False):
            try:
                outcomes.append(await ref.work(fail))
            except RuntimeError:
                outcomes.append("error")
        return outcomes

    assert sched.run_until_complete(main()) == ["error", "ok", "error", "ok"]
    assert runtime.stats.errors == 2


def test_failure_in_on_deactivate_is_contained():
    sched = Scheduler()
    runtime = build_runtime(sched)

    class BadGoodbye(Stateful):
        async def on_deactivate(self):
            raise OSError("flush failed")

    runtime.register_actor(BadGoodbye)

    async def main():
        ref = runtime.ref("BadGoodbye", "b")
        await ref.put(1)
        # Deactivation must complete despite the hook failure...
        assert await runtime.deactivate("BadGoodbye", "b") is True
        # ...and the actor is usable again (state lost: flush failed loudly).
        return await ref.get()

    assert sched.run_until_complete(main()) is None
    assert runtime.stats.activation_failures == 1


def test_calls_racing_with_deactivation_are_redelivered():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(Stateful)

    async def caller(ref, results):
        results.append(await ref.put(42))

    async def main():
        ref = runtime.ref("Stateful", "s")
        await ref.put(1)
        results = []
        # Deactivate while a new call is in flight across the network.
        sched.spawn(caller(ref, results))
        await runtime.deactivate("Stateful", "s")
        await sched.sleep(1)
        return results, await ref.get()

    results, value = sched.run_until_complete(main())
    assert results == [42]
    assert value == 42
    # The grain was reactivated exactly once for redelivery.
    assert runtime.stats.activations_created == 2


def test_no_silo_cluster_rejects_work_loudly():
    sched = Scheduler()
    config = RuntimeConfig()
    runtime = AodbRuntime(sched, config=config)
    runtime.register_actor(Stateful)

    async def main():
        with pytest.raises(SiloUnavailableError):
            await runtime.ref("Stateful", "s").put(1)

    sched.run_until_complete(main())


def test_reply_ignored_if_caller_future_already_failed():
    # A timeout consumer abandoning the reply must not crash the runtime.
    sched = Scheduler()
    runtime = build_runtime(sched)

    class Slow(Actor):
        async def slow(self):
            await self.context.runtime.scheduler.sleep(10)
            return "late"

    runtime.register_actor(Slow)

    async def main():
        from repro.errors import TimeoutError as KTimeout

        future = runtime.ref("Slow", "s").ask("slow")
        with pytest.raises(KTimeout):
            await sched.timeout(future, 1.0)
        await sched.sleep(20)  # late reply arrives, must be swallowed
        return True

    assert sched.run_until_complete(main()) is True


def test_unknown_type_in_directory_path():
    sched = Scheduler()
    runtime = build_runtime(sched)
    with pytest.raises(UnknownActorTypeError):
        runtime.actor_type("Ghost")


def test_stale_directory_entry_self_heals():
    sched = Scheduler()
    runtime = build_runtime(sched, silos=2)

    from repro.runtime import WritePolicy

    class WriteThrough(Stateful):
        # Write-through: a crash must not lose acknowledged writes.
        write_policy = WritePolicy.WRITE_THROUGH

    runtime.register_actor(WriteThrough, name="Stateful")

    async def main():
        ref = runtime.ref("Stateful", "s")
        await ref.put(7)
        key = ActorKey("Stateful", "s")
        hosting = runtime.directory.lookup(key)
        # Simulate a crash: the catalog loses the activation but the
        # directory entry lingers (stale).
        runtime.silo(hosting).remove_activation(key)
        # The next call heals the entry and reactivates from storage.
        return await ref.get()

    assert sched.run_until_complete(main()) == 7


def test_double_silo_registration_rejected():
    sched = Scheduler()
    runtime = build_runtime(sched)
    with pytest.raises(ValueError):
        runtime.add_silo("silo-0")


def test_shutdown_unknown_silo_raises():
    sched = Scheduler()
    runtime = build_runtime(sched)

    async def main():
        with pytest.raises(SiloUnavailableError):
            await runtime.shutdown_silo("ghost")

    sched.run_until_complete(main())
