"""View shards are ordinary grains: they migrate and drain losslessly."""

import math

import pytest

from repro.aodb import AodbDatabase, ViewDef
from repro.aodb.views import VIEW_ACTOR_TYPE, shard_id
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, ActorKey, AodbRuntime, RuntimeConfig


class Meter(Actor):
    async def setup(self, org_id):
        self.state["org_id"] = org_id
        self.state["view_stats"] = [0, 0.0, math.inf, -math.inf]
        return True

    async def add(self, points):
        stats = self.state["view_stats"]
        for _ts, value in points:
            stats[0] += 1
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)
        views = self.context.runtime.database.views
        tickets = views.emit_from(self, {"c0": points})
        if tickets:
            await self.context.runtime.scheduler.gather(tickets)
        return len(points)


@pytest.fixture
def cluster():
    sched = Scheduler()
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, network=network)
    runtime.add_silo("silo-1", cores=2)
    runtime.add_silo("silo-2", cores=2)
    db = AodbDatabase(runtime)
    db.register_actor(Meter)
    db.register_view(ViewDef(name="strain", source="Meter", group_by="org_id"))
    return sched, runtime, db


def test_view_shard_migrates_without_losing_folds(cluster):
    sched, runtime, db = cluster
    shard = ActorKey(VIEW_ACTOR_TYPE, shard_id("strain", "A"))

    async def main():
        await db.ref("Meter", "m1").setup("A")
        await db.ref("Meter", "m1").add([(0.0, 2.0), (0.1, 4.0)])
        source = runtime.directory.lookup(shard)
        target = "silo-2" if source != "silo-2" else "silo-1"
        moved = await runtime.migrate(shard, target)
        assert moved is True
        # Folds continue on the successor; watermarks survived the move,
        # so the post-migration delta is applied exactly once.
        await db.ref("Meter", "m1").add([(0.2, 6.0)])
        summary = await db.view("strain").get("A")
        accounting = await db.view("strain").fold_accounting("A")
        return runtime.directory.lookup(shard), summary, accounting

    located, summary, accounting = sched.run_until_complete(main())
    assert summary["count"] == 3
    assert summary["total"] == 12.0
    assert summary["min"] == 2.0 and summary["max"] == 6.0
    assert accounting["duplicates"] == 0
    # The shard really moved (directory points at the successor's silo).
    assert located in ("silo-1", "silo-2")


def test_extent_holds_migrated_grain_exactly_once(cluster):
    sched, runtime, db = cluster
    shard = ActorKey(VIEW_ACTOR_TYPE, shard_id("strain", "A"))

    async def main():
        await db.ref("Meter", "m1").setup("A")
        await db.ref("Meter", "m1").add([(0.0, 1.0)])
        source = runtime.directory.lookup(shard)
        target = "silo-2" if source != "silo-2" else "silo-1"
        await runtime.migrate(shard, target)
        # Reactivation on the target must not duplicate the extent entry.
        await db.ref("Meter", "m1").add([(0.1, 2.0)])

    sched.run_until_complete(main())
    extent = db.indexes.extent(VIEW_ACTOR_TYPE)
    assert extent.count(shard.actor_id) == 1
    assert db.indexes.extent("Meter") == ["m1"]


def test_extent_survives_silo_drain_exactly_once(cluster):
    sched, runtime, db = cluster
    shard = ActorKey(VIEW_ACTOR_TYPE, shard_id("strain", "A"))

    async def main():
        await db.ref("Meter", "m1").setup("A")
        await db.ref("Meter", "m1").add([(0.0, 5.0)])
        victim = runtime.directory.lookup(shard)
        await runtime.drain_silo(victim)
        return await db.view("strain").get("A")

    summary = sched.run_until_complete(main())
    assert summary["count"] == 1 and summary["total"] == 5.0
    extent = db.indexes.extent(VIEW_ACTOR_TYPE)
    assert extent.count(shard.actor_id) == 1
