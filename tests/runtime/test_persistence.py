"""Durable actor state: load on activation, write policies, silo shutdown."""

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig, WritePolicy
from repro.storage import InMemoryKVStore


def build_runtime(sched, store):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, grain_storage=store, network=network)
    runtime.add_silo("s1", cores=2)
    return runtime


class DurableCounter(Actor):
    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE

    async def increment(self, by=1):
        self.state["count"] = self.state.get("count", 0) + by
        self.mark_dirty()
        return self.state["count"]

    async def read(self):
        return self.state.get("count", 0)


class WriteThroughCounter(DurableCounter):
    write_policy = WritePolicy.WRITE_THROUGH


class ManualCounter(DurableCounter):
    write_policy = WritePolicy.MANUAL


class IntervalCounter(DurableCounter):
    write_policy = WritePolicy.INTERVAL
    write_interval_seconds = 10.0


def test_on_deactivate_policy_writes_only_at_deactivation(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(DurableCounter)

    async def main():
        ref = runtime.ref("DurableCounter", "d")
        await ref.increment()
        await ref.increment()
        assert store.writes == 0
        await runtime.deactivate("DurableCounter", "d")
        assert store.writes == 1
        # Reactivation loads the persisted state.
        return await ref.read()

    assert sched.run_until_complete(main()) == 2
    assert runtime.stats.activations_collected == 1


def test_write_through_policy_writes_every_mutation(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(WriteThroughCounter)

    async def main():
        ref = runtime.ref("WriteThroughCounter", "w")
        await ref.increment()
        await ref.increment()
        return store.writes

    assert sched.run_until_complete(main()) == 2


def test_write_through_skips_read_only_methods(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)

    from repro.runtime import actor_method

    class ReadMostly(Actor):
        durable = True
        write_policy = WritePolicy.WRITE_THROUGH

        async def put(self, value):
            self.state["v"] = value

        @actor_method(read_only=True)
        async def get(self):
            return self.state.get("v")

    runtime.register_actor(ReadMostly)

    async def main():
        ref = runtime.ref("ReadMostly", "r")
        await ref.put(1)
        writes_after_put = store.writes
        await ref.get()
        await ref.get()
        return writes_after_put, store.writes

    after_put, after_gets = sched.run_until_complete(main())
    assert after_put == 1
    assert after_gets == 1


def test_manual_policy_never_writes_automatically(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(ManualCounter)

    async def main():
        ref = runtime.ref("ManualCounter", "m")
        await ref.increment()
        await runtime.deactivate("ManualCounter", "m")
        return store.writes, await ref.read()

    writes, value = sched.run_until_complete(main())
    assert writes == 0
    assert value == 0  # state was lost, as MANUAL demands


def test_manual_policy_explicit_write_state(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)

    class Saver(ManualCounter):
        async def save(self):
            await self.write_state()
            return True

    runtime.register_actor(Saver)

    async def main():
        ref = runtime.ref("Saver", "s")
        await ref.increment(5)
        await ref.save()
        await runtime.deactivate("Saver", "s")
        return await ref.read()

    assert sched.run_until_complete(main()) == 5


def test_interval_policy_flushes_periodically(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(IntervalCounter)

    async def main():
        ref = runtime.ref("IntervalCounter", "i")
        await ref.increment()
        assert store.writes == 0
        await sched.sleep(10.5)  # one flush interval passes
        first = store.writes
        await sched.sleep(10.5)  # nothing dirty: no extra write
        second = store.writes
        await ref.increment()
        await sched.sleep(10.5)
        third = store.writes
        return first, second, third

    assert sched.run_until_complete(main()) == (1, 1, 2)


def test_silo_shutdown_persists_all_durable_state(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(DurableCounter)

    async def main():
        for i in range(5):
            await runtime.ref("DurableCounter", f"d{i}").increment(i)
        count = await runtime.shutdown_silo("s1")
        return count

    assert sched.run_until_complete(main()) == 5
    assert store.writes == 5
    assert len(store) == 5


def test_state_survives_deactivate_reactivate_cycles(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(DurableCounter)

    async def main():
        ref = runtime.ref("DurableCounter", "cycle")
        for expected in range(1, 4):
            value = await ref.increment()
            assert value == expected
            await runtime.deactivate("DurableCounter", "cycle")
        return await ref.read()

    assert sched.run_until_complete(main()) == 3


def test_non_durable_actor_write_state_raises(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)

    class Volatile(Actor):
        async def save(self):
            await self.write_state()

    runtime.register_actor(Volatile)

    async def main():
        from repro.errors import ActorMethodError

        with pytest.raises(ActorMethodError):
            await runtime.ref("Volatile", "v").save()

    sched.run_until_complete(main())


def test_clear_state_removes_document(sched):
    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)

    class Clearable(DurableCounter):
        async def wipe(self):
            await self.clear_state()
            return True

    runtime.register_actor(Clearable)

    async def main():
        ref = runtime.ref("Clearable", "c")
        await ref.increment(3)
        await runtime.deactivate("Clearable", "c")
        assert len(store) == 1
        await ref.wipe()
        await runtime.deactivate("Clearable", "c")
        return await ref.read()

    assert sched.run_until_complete(main()) == 0


def test_write_through_conflict_surfaces_conditional_check_failure(sched):
    # An out-of-band writer bumping the etag means this activation's view of
    # the document is stale; the flush must fail loudly, not last-write-win.
    from repro.errors import ConditionalCheckFailedError

    store = InMemoryKVStore()
    runtime = build_runtime(sched, store)
    runtime.register_actor(WriteThroughCounter)

    async def main():
        ref = runtime.ref("WriteThroughCounter", "w")
        await ref.increment()  # flush at etag 1
        await store.put("state/WriteThroughCounter/w", {"count": 99})  # etag 2
        with pytest.raises(ConditionalCheckFailedError):
            await ref.increment()
        return (await store.get("state/WriteThroughCounter/w")).value

    # The out-of-band document wins; the stale flush changed nothing.
    assert sched.run_until_complete(main()) == {"count": 99}


def test_group_commit_conflict_surfaces_conditional_check_failure(sched):
    # Same conflict, but the flush rides a batched put_many: the failure must
    # come back through the individual group-commit ticket, not vanish into
    # the batch.
    from repro.errors import ConditionalCheckFailedError

    store = InMemoryKVStore()
    config = RuntimeConfig(
        default_method_cost=0.0, activation_cost=0.0, enable_group_commit=True
    )
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, grain_storage=store, network=network)
    runtime.add_silo("s1", cores=2)
    runtime.register_actor(WriteThroughCounter)

    async def main():
        ref = runtime.ref("WriteThroughCounter", "w")
        await ref.increment()
        await store.put("state/WriteThroughCounter/w", {"count": 99})
        with pytest.raises(ConditionalCheckFailedError):
            await ref.increment()
        assert runtime.group_commit is not None
        return runtime.group_commit.batches >= 1

    assert sched.run_until_complete(main()) is True
