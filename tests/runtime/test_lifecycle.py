"""Activation lifecycle: hooks, idle collection, timers, reminders, failures."""

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig


def build_runtime(sched, **config_kwargs):
    config_kwargs.setdefault("default_method_cost", 0.0)
    config_kwargs.setdefault("activation_cost", 0.0)
    config = RuntimeConfig(**config_kwargs)
    network = Network(sched, lan=ConstantLatency(0.0))
    runtime = AodbRuntime(sched, config=config, network=network)
    runtime.add_silo("s1", cores=2)
    return runtime


class Lifecycled(Actor):
    activations = []
    deactivations = []

    async def on_activate(self):
        Lifecycled.activations.append(self.actor_id)

    async def on_deactivate(self):
        Lifecycled.deactivations.append(self.actor_id)

    async def ping(self):
        return "pong"


@pytest.fixture(autouse=True)
def reset_lifecycle_log():
    Lifecycled.activations = []
    Lifecycled.deactivations = []


def test_lifecycle_hooks_run(sched):
    runtime = build_runtime(sched)
    runtime.register_actor(Lifecycled)

    async def main():
        await runtime.ref("Lifecycled", "x").ping()
        await runtime.deactivate("Lifecycled", "x")

    sched.run_until_complete(main())
    assert Lifecycled.activations == ["x"]
    assert Lifecycled.deactivations == ["x"]


def test_idle_collection_deactivates_unused_actors(sched):
    runtime = build_runtime(sched, idle_timeout=50.0, collection_interval=10.0)
    runtime.register_actor(Lifecycled)
    runtime.start()

    async def main():
        hot = runtime.ref("Lifecycled", "hot")
        cold = runtime.ref("Lifecycled", "cold")
        await hot.ping()
        await cold.ping()
        # Keep `hot` warm; let `cold` idle out.
        for _ in range(8):
            await sched.sleep(15)
            await hot.ping()
        return runtime.total_activations()

    assert sched.run_until_complete(main()) == 1
    assert "cold" in Lifecycled.deactivations
    assert "hot" not in Lifecycled.deactivations
    assert runtime.stats.activations_collected == 1


def test_collected_actor_reactivates_on_next_call(sched):
    runtime = build_runtime(sched, idle_timeout=10.0, collection_interval=5.0)
    runtime.register_actor(Lifecycled)
    runtime.start()

    async def main():
        ref = runtime.ref("Lifecycled", "x")
        await ref.ping()
        await sched.sleep(30)
        assert runtime.total_activations() == 0
        return await ref.ping()

    assert sched.run_until_complete(main()) == "pong"
    assert Lifecycled.activations == ["x", "x"]


def test_busy_actor_not_collected(sched):
    runtime = build_runtime(sched, idle_timeout=5.0, collection_interval=2.0)

    class Slow(Actor):
        async def long_job(self):
            await self.context.runtime.scheduler.sleep(30)
            return "done"

    runtime.register_actor(Slow)
    runtime.start()

    async def main():
        result = await runtime.ref("Slow", "s").long_job()
        return result

    assert sched.run_until_complete(main()) == "done"
    assert runtime.stats.activations_collected == 0


def test_on_activate_failure_rejects_callers_and_recovers(sched):
    runtime = build_runtime(sched)

    class Flaky(Actor):
        attempts = 0

        async def on_activate(self):
            Flaky.attempts += 1
            if Flaky.attempts == 1:
                raise RuntimeError("transient init failure")

        async def ping(self):
            return "pong"

    runtime.register_actor(Flaky)

    async def main():
        ref = runtime.ref("Flaky", "f")
        with pytest.raises(RuntimeError, match="transient init failure"):
            await ref.ping()
        # Next call gets a fresh activation that succeeds.
        return await ref.ping()

    assert sched.run_until_complete(main()) == "pong"
    assert runtime.stats.activation_failures == 1
    assert Flaky.attempts == 2


def test_actor_timer_fires_through_mailbox(sched):
    runtime = build_runtime(sched)

    class Ticker(Actor):
        def __init__(self, context):
            super().__init__(context)
            self.ticks = 0

        async def begin(self):
            self.context.register_timer("t", 5.0, "tick")
            return True

        async def tick(self):
            self.ticks += 1

        async def count(self):
            return self.ticks

    runtime.register_actor(Ticker)

    async def main():
        ref = runtime.ref("Ticker", "t")
        await ref.begin()
        await sched.sleep(26)
        return await ref.count()

    assert sched.run_until_complete(main()) == 5


def test_timer_cancel(sched):
    runtime = build_runtime(sched)

    class Ticker(Actor):
        def __init__(self, context):
            super().__init__(context)
            self.ticks = 0

        async def begin(self):
            self.context.register_timer("t", 5.0, "tick")

        async def stop(self):
            return self.context.cancel_timer("t")

        async def tick(self):
            self.ticks += 1

        async def count(self):
            return self.ticks

    runtime.register_actor(Ticker)

    async def main():
        ref = runtime.ref("Ticker", "t")
        await ref.begin()
        await sched.sleep(11)
        cancelled = await ref.stop()
        await sched.sleep(20)
        return cancelled, await ref.count()

    cancelled, ticks = sched.run_until_complete(main())
    assert cancelled is True
    assert ticks == 2


def test_timers_die_with_activation(sched):
    runtime = build_runtime(sched, idle_timeout=10.0, collection_interval=5.0)

    class Ticker(Actor):
        total_ticks = 0

        async def begin(self):
            self.context.register_timer("t", 3.0, "tick")

        async def tick(self):
            # Ticks keep last_used fresh, so idle collection would never
            # fire; cancel after the first tick to let the actor idle out.
            Ticker.total_ticks += 1
            self.context.cancel_timer("t")

    runtime.register_actor(Ticker)
    runtime.start()

    async def main():
        await runtime.ref("Ticker", "t").begin()
        await sched.sleep(60)
        return Ticker.total_ticks

    assert sched.run_until_complete(main()) == 1
    assert runtime.stats.activations_collected == 1


def test_reminder_delivered_and_survives_deactivation(sched):
    runtime = build_runtime(
        sched, idle_timeout=15.0, collection_interval=5.0, reminder_tick=10.0
    )

    class Reminded(Actor):
        reminders_seen = []

        async def begin(self):
            self.context.register_reminder("report", period=30.0)

        async def receive_reminder(self, name):
            Reminded.reminders_seen.append((name, self.context.now))

    runtime.register_actor(Reminded)
    runtime.start()

    async def main():
        await runtime.ref("Reminded", "r").begin()
        await sched.sleep(100)
        return list(Reminded.reminders_seen)

    seen = sched.run_until_complete(main())
    assert len(seen) >= 3
    assert all(name == "report" for name, _ in seen)
    # The actor idled out between reminders, so it was re-activated:
    assert runtime.stats.activations_created >= 2


def test_unregister_reminder_stops_delivery(sched):
    runtime = build_runtime(sched, reminder_tick=5.0)

    class Reminded(Actor):
        count = 0

        async def begin(self):
            self.context.register_reminder("r", period=10.0)

        async def halt(self):
            return self.context.unregister_reminder("r")

        async def receive_reminder(self, name):
            Reminded.count += 1

    runtime.register_actor(Reminded)
    runtime.start()

    async def main():
        ref = runtime.ref("Reminded", "x")
        await ref.begin()
        await sched.sleep(21)
        removed = await ref.halt()
        baseline = Reminded.count
        await sched.sleep(40)
        return removed, baseline, Reminded.count

    removed, baseline, final = sched.run_until_complete(main())
    assert removed is True
    assert baseline >= 1
    assert final == baseline


def test_runtime_stop_shuts_everything_down(sched):
    runtime = build_runtime(sched)
    runtime.register_actor(Lifecycled)
    runtime.start()

    async def main():
        for i in range(3):
            await runtime.ref("Lifecycled", f"a{i}").ping()
        await runtime.stop()
        return runtime.total_activations(), len(runtime.silos())

    activations, silos = sched.run_until_complete(main())
    assert activations == 0
    assert silos == 0
    assert sorted(Lifecycled.deactivations) == ["a0", "a1", "a2"]


def test_describe_cluster_snapshot(sched):
    runtime = build_runtime(sched)
    runtime.register_actor(Lifecycled)

    async def main():
        await runtime.ref("Lifecycled", "x").ping()
        return runtime.describe_cluster()

    snapshot = sched.run_until_complete(main())
    assert snapshot["silos"]["s1"]["activations"] == 1
    assert snapshot["directory_entries"] == 1
    assert "Lifecycled" in snapshot["actor_types"]
