"""Call-chain cycle detection and ungraceful silo crashes."""

import pytest

from repro.errors import ReentrancyError, SiloUnavailableError
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig, WritePolicy


def build_runtime(sched, silos=1):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.0005))
    )
    for i in range(silos):
        runtime.add_silo(f"silo-{i}", cores=2)
    return runtime


class PingPong(Actor):
    """Calls its peer, which calls back — the classic A→B→A cycle."""

    async def start_cycle(self, peer_id):
        peer = self.context.actor(self.key.type_name, peer_id)
        return await peer.bounce_back(self.actor_id)

    async def bounce_back(self, origin_id):
        origin = self.context.actor(self.key.type_name, origin_id)
        return await origin.leaf()

    async def leaf(self):
        return "reached the cycle end"


class ChainReentrant(PingPong):
    allow_chain_reentrancy = True


class SelfCaller(Actor):
    async def outer(self):
        me = self.context.actor("SelfCaller", self.actor_id)
        return await me.inner()

    async def inner(self):
        return "inner"


def test_cycle_detected_instead_of_deadlock():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(PingPong)

    async def main():
        with pytest.raises(ReentrancyError, match="would deadlock"):
            await runtime.ref("PingPong", "a").start_cycle("b")
        # Both actors remain usable after the rejected cycle.
        return await runtime.ref("PingPong", "a").leaf()

    assert sched.run_until_complete(main()) == "reached the cycle end"


def test_self_call_detected():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(SelfCaller)

    async def main():
        with pytest.raises(ReentrancyError):
            await runtime.ref("SelfCaller", "s").outer()

    sched.run_until_complete(main())


def test_chain_reentrancy_flag_allows_cycles():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(ChainReentrant)

    async def main():
        return await runtime.ref("ChainReentrant", "a").start_cycle("b")

    assert sched.run_until_complete(main()) == "reached the cycle end"


def test_unrelated_concurrent_calls_are_not_misdetected():
    sched = Scheduler()
    runtime = build_runtime(sched)
    runtime.register_actor(PingPong)

    async def main():
        # Plain chains (client -> a -> b) from many clients never trip
        # the cycle detector.
        futures = [
            runtime.ref("PingPong", "a").ask("bounce_back", f"other-{i}")
            for i in range(5)
        ]
        return await sched.gather(futures)

    results = sched.run_until_complete(main())
    assert results == ["reached the cycle end"] * 5


def test_reentrant_actor_needs_no_detection():
    sched = Scheduler()
    runtime = build_runtime(sched)

    class FullyReentrant(PingPong):
        reentrant = True

    runtime.register_actor(FullyReentrant)

    async def main():
        return await runtime.ref("FullyReentrant", "a").start_cycle("b")

    assert sched.run_until_complete(main()) == "reached the cycle end"


# -- crash_silo ----------------------------------------------------------------


class Durable(Actor):
    durable = True
    write_policy = WritePolicy.WRITE_THROUGH

    async def put(self, value):
        self.state["v"] = value
        return value

    async def get(self):
        return self.state.get("v")


class Volatile(Actor):
    durable = True
    write_policy = WritePolicy.ON_DEACTIVATE

    async def put(self, value):
        self.state["v"] = value
        self.mark_dirty()
        return value

    async def get(self):
        return self.state.get("v")


def test_crash_loses_unflushed_state_but_not_flushed():
    sched = Scheduler()
    runtime = build_runtime(sched, silos=2)
    runtime.register_actors([Durable, Volatile])
    from repro.runtime import ActorKey

    runtime.pinned_placement.pin(ActorKey("Durable", "d"), "silo-0")
    runtime.pinned_placement.pin(ActorKey("Volatile", "v"), "silo-0")

    async def main():
        await runtime.ref("Durable", "d").put(42)     # flushed (write-through)
        await runtime.ref("Volatile", "v").put(42)    # in memory only
        lost = runtime.crash_silo("silo-0")
        durable = await runtime.ref("Durable", "d").get()
        volatile = await runtime.ref("Volatile", "v").get()
        return lost, durable, volatile

    lost, durable, volatile = sched.run_until_complete(main())
    assert lost == 2
    assert durable == 42      # survived: state was persisted before the crash
    assert volatile is None   # lost: crash skips on_deactivate flushing
    assert runtime.stats.activations_crashed == 2


def test_crash_fails_queued_requests_loudly():
    sched = Scheduler()
    runtime = build_runtime(sched, silos=1)

    class Slow(Actor):
        async def slow(self):
            await self.context.runtime.scheduler.sleep(100)
            return "done"

    runtime.register_actor(Slow)

    async def main():
        ref = runtime.ref("Slow", "s")
        first = ref.ask("slow")
        await sched.sleep(1)
        queued = ref.ask("slow")
        await sched.sleep(1)
        runtime.crash_silo("silo-0")
        outcomes = []
        for future in (queued,):
            try:
                outcomes.append(await future)
            except SiloUnavailableError:
                outcomes.append("failed")
        return outcomes

    assert sched.run_until_complete(main()) == ["failed"]


def test_crashed_actors_replace_on_surviving_silos():
    sched = Scheduler()
    runtime = build_runtime(sched, silos=2)
    runtime.register_actor(Durable)
    from repro.runtime import ActorKey

    runtime.pinned_placement.pin(ActorKey("Durable", "d"), "silo-0")

    async def main():
        await runtime.ref("Durable", "d").put(7)
        runtime.crash_silo("silo-0")
        value = await runtime.ref("Durable", "d").get()
        key = ActorKey("Durable", "d")
        return value, runtime.directory.lookup(key)

    value, host = sched.run_until_complete(main())
    assert value == 7
    assert host == "silo-1"


def test_crash_unknown_silo_raises():
    sched = Scheduler()
    runtime = build_runtime(sched)
    with pytest.raises(SiloUnavailableError):
        runtime.crash_silo("ghost")
