"""Turn-based execution, reentrancy, CPU cost charging and queueing."""

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig, actor_method


def quiet_runtime(sched, **config_kwargs):
    """A runtime with a zero-latency network, for exact timing assertions."""
    config = RuntimeConfig(**config_kwargs)
    network = Network(sched, lan=ConstantLatency(0.0))
    return AodbRuntime(sched, config=config, network=network)


class SlowActor(Actor):
    """Methods that take virtual time, to observe interleaving."""

    def __init__(self, context):
        super().__init__(context)
        self.trace = []

    async def slow(self, name, duration):
        self.trace.append(("start", name, self.context.now))
        await self.context.runtime.scheduler.sleep(duration)
        self.trace.append(("end", name, self.context.now))
        return name

    async def get_trace(self):
        return self.trace


class ReentrantActor(SlowActor):
    reentrant = True


def test_non_reentrant_actor_processes_one_message_at_a_time(sched, runtime):
    runtime.register_actor(SlowActor)

    async def main():
        ref = runtime.ref("SlowActor", "s")
        futures = [ref.ask("slow", "a", 1.0), ref.ask("slow", "b", 1.0)]
        await sched.gather(futures)
        return await ref.get_trace()

    trace = sched.run_until_complete(main())
    # b must start only after a ended.
    labels = [(kind, name) for kind, name, _ in trace]
    assert labels == [("start", "a"), ("end", "a"), ("start", "b"), ("end", "b")]


def test_reentrant_actor_interleaves_messages(sched, runtime):
    runtime.register_actor(ReentrantActor)

    async def main():
        ref = runtime.ref("ReentrantActor", "r")
        futures = [ref.ask("slow", "a", 2.0), ref.ask("slow", "b", 1.0)]
        await sched.gather(futures)
        return await ref.get_trace()

    trace = sched.run_until_complete(main())
    labels = [(kind, name) for kind, name, _ in trace]
    # b starts while a is sleeping, and finishes first.
    assert labels == [("start", "a"), ("start", "b"), ("end", "b"), ("end", "a")]


def test_cpu_cost_serializes_on_single_core(sched):
    config = RuntimeConfig(default_method_cost=0.1, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config)
    runtime.add_silo("s1", cores=1)

    class Worker(Actor):
        async def work(self):
            return self.context.now

    runtime.register_actor(Worker)

    async def main():
        # Two different actors on the same silo contend for one core.
        a = runtime.ref("Worker", "a")
        b = runtime.ref("Worker", "b")
        return await sched.gather([a.ask("work"), b.ask("work")])

    finish_a, finish_b = sched.run_until_complete(main())
    # Each method costs 0.1 core-seconds; the second waited for the first.
    assert finish_b - finish_a == pytest.approx(0.1)


def test_method_cost_override_via_decorator(sched):
    runtime = quiet_runtime(sched, default_method_cost=0.0, activation_cost=0.0)
    runtime.add_silo("s1", cores=1)

    class Mixed(Actor):
        @actor_method(cost=0.5)
        async def expensive(self):
            return self.context.now

        async def cheap(self):
            return self.context.now

    runtime.register_actor(Mixed)

    async def main():
        ref = runtime.ref("Mixed", "m")
        expensive_done = await ref.expensive()
        cheap_done = await ref.cheap()
        return expensive_done, cheap_done

    expensive_done, cheap_done = sched.run_until_complete(main())
    assert expensive_done == pytest.approx(0.5)
    assert cheap_done == pytest.approx(0.5)  # zero-cost, right after


def test_class_default_method_cost(sched):
    runtime = quiet_runtime(sched, default_method_cost=0.0, activation_cost=0.0)
    runtime.add_silo("s1", cores=1)

    class Costly(Actor):
        default_method_cost = 0.25

        async def run(self):
            return self.context.now

    runtime.register_actor(Costly)

    async def main():
        return await runtime.ref("Costly", "c").run()

    assert sched.run_until_complete(main()) == pytest.approx(0.25)


def test_activation_cost_charged_once(sched):
    runtime = quiet_runtime(sched, default_method_cost=0.0, activation_cost=0.2)
    runtime.add_silo("s1", cores=1)

    class Plain(Actor):
        async def ping(self):
            return self.context.now

    runtime.register_actor(Plain)

    async def main():
        ref = runtime.ref("Plain", "p")
        first = await ref.ping()
        second = await ref.ping()
        return first, second

    first, second = sched.run_until_complete(main())
    assert first == pytest.approx(0.2)
    assert second == pytest.approx(first)  # no re-activation


def test_wave_of_requests_queues_on_cpu(sched):
    """A synchronized wave drains through cores FCFS — the paper's dynamics."""
    config = RuntimeConfig(default_method_cost=0.01, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config)
    runtime.add_silo("s1", cores=2)

    class Sink(Actor):
        async def ingest(self):
            return self.context.now

    runtime.register_actor(Sink)

    async def main():
        futures = [
            runtime.ref("Sink", f"a{i}").ask("ingest") for i in range(20)
        ]
        return await sched.gather(futures)

    finish_times = sched.run_until_complete(main())
    # 20 jobs x 0.01s over 2 cores => last completes at ~0.1s.
    assert max(finish_times) == pytest.approx(0.1, rel=0.05)


def test_mailbox_capacity_overflow_fails_ask(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(sched, config=config)
    runtime.add_silo("s1", cores=1)

    class Tiny(Actor):
        mailbox_capacity = 1

        async def busy(self, duration):
            await self.context.runtime.scheduler.sleep(duration)
            return "ok"

    runtime.register_actor(Tiny)

    async def main():
        ref = runtime.ref("Tiny", "t")
        first = ref.ask("busy", 10.0)   # executing
        second = ref.ask("busy", 0.0)   # buffered (1 slot)
        third = ref.ask("busy", 0.0)    # overflow
        results = []
        for fut in (first, second, third):
            try:
                results.append(await fut)
            except Exception as exc:  # noqa: BLE001
                results.append(type(exc).__name__)
        return results

    results = sched.run_until_complete(main())
    assert results == ["ok", "ok", "MailboxOverflowError"]
    assert runtime.stats.dropped_messages == 1
