"""Unit tests for the metrics registry: instruments, probes, snapshots."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric,
)


def test_format_metric_sorts_labels():
    assert format_metric("net.drops", {}) == "net.drops"
    assert (
        format_metric("net.drops", {"silo": "s1", "az": "a"})
        == "net.drops{az=a,silo=s1}"
    )


def test_counter_and_gauge_are_get_or_create():
    registry = MetricsRegistry()
    c1 = registry.counter("runtime.asks", silo="s1")
    c1.inc()
    c1.inc(2.5)
    assert registry.counter("runtime.asks", silo="s1") is c1
    assert c1.value == 3.5
    # Different labels are a different instrument.
    assert registry.counter("runtime.asks", silo="s2") is not c1
    g = registry.gauge("mailbox.depth", silo="s1")
    g.set(7.0)
    g.add(-2.0)
    assert registry.gauge("mailbox.depth", silo="s1").value == 5.0


def test_histogram_buckets_and_quantiles():
    registry = MetricsRegistry()
    h = registry.histogram("lat", boundaries=(0.01, 0.1, 1.0))
    assert registry.histogram("lat") is h  # boundaries only matter at creation
    for value in (0.005, 0.05, 0.05, 0.5, 2.0):
        h.observe(value)
    assert h.count == 5
    assert h.bucket_counts == [1, 2, 1, 1]  # last is the overflow bucket
    assert h.mean == pytest.approx(0.521)
    assert h.minimum == 0.005
    assert h.maximum == 2.0
    assert h.quantile(0.5) == 0.1  # upper edge of the bucket holding rank
    assert h.quantile(1.0) == 2.0  # overflow reports the true max
    summary = h.summary()
    assert summary["count"] == 5
    assert summary["max"] == 2.0


def test_histogram_empty_and_invalid():
    h = Histogram("lat", {}, boundaries=(1.0,))
    assert h.mean == 0.0
    assert h.quantile(0.99) == 0.0
    assert h.summary()["min"] == 0.0  # not inf in the serialized view
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("bad", {}, boundaries=())


def test_probes_evaluated_only_at_snapshot():
    registry = MetricsRegistry()
    calls = []

    def probe():
        calls.append(1)
        return 42.0

    registry.register_probe("kernel.pending", probe, silo="s1")
    assert calls == []  # registration is free
    snapshot = registry.snapshot()
    assert snapshot["kernel.pending{silo=s1}"] == 42.0
    assert len(calls) == 1


def test_dead_probe_reports_nan_not_raise():
    registry = MetricsRegistry()
    registry.register_probe("gone", lambda: 1 / 0)
    assert math.isnan(registry.snapshot()["gone"])
    # ...and the nan probe is skipped by totals rather than poisoning them.
    registry.counter("alive").inc(3.0)
    assert registry.cluster_totals() == {"alive": 3.0}


def test_unregister_probes_by_label():
    registry = MetricsRegistry()
    registry.register_probe("depth", lambda: 1.0, silo="s1")
    registry.register_probe("depth", lambda: 2.0, silo="s2")
    registry.register_probe("other", lambda: 3.0, silo="s1", az="a")
    assert registry.unregister_probes(silo="s1") == 2
    assert set(registry.snapshot()) == {"depth{silo=s2}"}


def test_snapshot_selector_filters_by_labels():
    registry = MetricsRegistry()
    registry.counter("asks", silo="s1").inc(1)
    registry.counter("asks", silo="s2").inc(10)
    registry.gauge("depth", silo="s1").set(4.0)
    per_silo = registry.snapshot(silo="s1")
    assert per_silo == {"asks{silo=s1}": 1.0, "depth{silo=s1}": 4.0}


def test_cluster_totals_sum_across_silos_and_skip_histograms():
    registry = MetricsRegistry()
    registry.counter("asks", silo="s1").inc(1)
    registry.counter("asks", silo="s2").inc(10)
    registry.histogram("lat", silo="s1").observe(0.5)
    registry.register_probe("depth", lambda: 2.5, silo="s1")
    registry.register_probe("depth", lambda: 1.5, silo="s2")
    totals = registry.cluster_totals()
    assert totals["asks"] == 11.0
    assert totals["depth"] == 4.0
    assert "lat" not in totals


def test_instruments_repr_do_not_crash():
    assert "Counter" in repr(Counter("a", {}))
    assert "Gauge" in repr(Gauge("b", {"x": "y"}))


# -- quantile edge cases -------------------------------------------------------


def test_quantile_fraction_zero_is_observed_minimum():
    h = Histogram("lat", {}, boundaries=(0.1, 1.0))
    h.observe(0.03)
    h.observe(0.7)
    assert h.quantile(0.0) == 0.03


def test_quantile_fraction_one_is_observed_maximum():
    h = Histogram("lat", {}, boundaries=(0.1, 1.0))
    h.observe(0.03)
    h.observe(0.7)
    assert h.quantile(1.0) == 0.7


def test_quantile_overflow_bucket_reports_true_max():
    h = Histogram("lat", {}, boundaries=(0.1,))
    h.observe(5.0)  # only sample, beyond the last finite edge
    for fraction in (0.01, 0.5, 0.99, 1.0):
        assert h.quantile(fraction) == 5.0


def test_quantile_skips_empty_buckets():
    # Samples land only in the last finite bucket; the empty lower buckets
    # must not absorb the rank and report an edge nothing ever reached.
    h = Histogram("lat", {}, boundaries=(0.001, 0.01, 0.1, 1.0))
    for _ in range(10):
        h.observe(0.5)
    assert h.quantile(0.5) == 0.5  # edge 1.0 clamped to the observed max
    assert h.quantile(0.01) == 0.5


def test_quantile_clamps_edge_into_observed_range():
    # One sample at the very bottom of a wide bucket: the bucket's upper
    # edge (1.0) overstates it, so the estimate clamps to the maximum.
    h = Histogram("lat", {}, boundaries=(0.1, 1.0))
    h.observe(0.2)
    assert h.quantile(0.5) == 0.2
    # And a sparse histogram never reports below its minimum either.
    h2 = Histogram("lat", {}, boundaries=(0.1, 1.0))
    h2.observe(0.9)
    h2.observe(0.95)
    assert h2.quantile(0.25) >= h2.minimum


def test_empty_histogram_quantile_is_zero_for_all_fractions():
    h = Histogram("lat", {}, boundaries=(1.0,))
    for fraction in (0.0, 0.5, 1.0):
        assert h.quantile(fraction) == 0.0


# -- label-cardinality guard ---------------------------------------------------


def test_cardinality_guard_collapses_label_sets_beyond_cap():
    registry = MetricsRegistry(max_label_sets=2)
    registry.counter("asks", silo="s1").inc(1.0)
    registry.counter("asks", silo="s2").inc(2.0)
    overflow = registry.counter("asks", silo="s3")
    overflow.inc(5.0)
    assert overflow.labels == {"overflow": "true"}
    assert registry.dropped_label_sets == 1
    # Further over-cap label sets share the same overflow instrument.
    assert registry.counter("asks", silo="s4") is overflow
    assert registry.dropped_label_sets == 2
    snapshot = registry.snapshot()
    assert snapshot["asks{overflow=true}"] == 5.0
    # Totals stay complete — resolution degrades, accounting does not.
    assert registry.cluster_totals()["asks"] == 8.0


def test_cardinality_guard_keeps_admitted_instruments_stable():
    registry = MetricsRegistry(max_label_sets=1)
    first = registry.counter("asks", silo="s1")
    registry.counter("asks", silo="s2").inc()  # collapsed
    assert registry.counter("asks", silo="s1") is first  # still direct


def test_cardinality_guard_is_per_name():
    registry = MetricsRegistry(max_label_sets=1)
    registry.counter("asks", silo="s1")
    registry.counter("tells", silo="s1")  # different name: own budget
    assert registry.dropped_label_sets == 0


def test_cardinality_guard_exempts_unlabeled_instruments():
    registry = MetricsRegistry(max_label_sets=0)
    counter = registry.counter("asks")
    counter.inc(3.0)
    assert counter.labels == {}
    assert registry.dropped_label_sets == 0


def test_cardinality_guard_applies_to_gauges_and_histograms():
    registry = MetricsRegistry(max_label_sets=1)
    registry.gauge("depth", silo="s1").set(1.0)
    overflow_gauge = registry.gauge("depth", silo="s2")
    assert overflow_gauge.labels == {"overflow": "true"}
    registry.histogram("lat", silo="s1").observe(0.1)
    overflow_histogram = registry.histogram("lat", silo="s2")
    assert overflow_histogram.labels == {"overflow": "true"}
    assert registry.dropped_label_sets == 2
