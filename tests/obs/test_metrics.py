"""Unit tests for the metrics registry: instruments, probes, snapshots."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric,
)


def test_format_metric_sorts_labels():
    assert format_metric("net.drops", {}) == "net.drops"
    assert (
        format_metric("net.drops", {"silo": "s1", "az": "a"})
        == "net.drops{az=a,silo=s1}"
    )


def test_counter_and_gauge_are_get_or_create():
    registry = MetricsRegistry()
    c1 = registry.counter("runtime.asks", silo="s1")
    c1.inc()
    c1.inc(2.5)
    assert registry.counter("runtime.asks", silo="s1") is c1
    assert c1.value == 3.5
    # Different labels are a different instrument.
    assert registry.counter("runtime.asks", silo="s2") is not c1
    g = registry.gauge("mailbox.depth", silo="s1")
    g.set(7.0)
    g.add(-2.0)
    assert registry.gauge("mailbox.depth", silo="s1").value == 5.0


def test_histogram_buckets_and_quantiles():
    registry = MetricsRegistry()
    h = registry.histogram("lat", boundaries=(0.01, 0.1, 1.0))
    assert registry.histogram("lat") is h  # boundaries only matter at creation
    for value in (0.005, 0.05, 0.05, 0.5, 2.0):
        h.observe(value)
    assert h.count == 5
    assert h.bucket_counts == [1, 2, 1, 1]  # last is the overflow bucket
    assert h.mean == pytest.approx(0.521)
    assert h.minimum == 0.005
    assert h.maximum == 2.0
    assert h.quantile(0.5) == 0.1  # upper edge of the bucket holding rank
    assert h.quantile(1.0) == 2.0  # overflow reports the true max
    summary = h.summary()
    assert summary["count"] == 5
    assert summary["max"] == 2.0


def test_histogram_empty_and_invalid():
    h = Histogram("lat", {}, boundaries=(1.0,))
    assert h.mean == 0.0
    assert h.quantile(0.99) == 0.0
    assert h.summary()["min"] == 0.0  # not inf in the serialized view
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        Histogram("bad", {}, boundaries=())


def test_probes_evaluated_only_at_snapshot():
    registry = MetricsRegistry()
    calls = []

    def probe():
        calls.append(1)
        return 42.0

    registry.register_probe("kernel.pending", probe, silo="s1")
    assert calls == []  # registration is free
    snapshot = registry.snapshot()
    assert snapshot["kernel.pending{silo=s1}"] == 42.0
    assert len(calls) == 1


def test_dead_probe_reports_nan_not_raise():
    registry = MetricsRegistry()
    registry.register_probe("gone", lambda: 1 / 0)
    assert math.isnan(registry.snapshot()["gone"])
    # ...and the nan probe is skipped by totals rather than poisoning them.
    registry.counter("alive").inc(3.0)
    assert registry.cluster_totals() == {"alive": 3.0}


def test_unregister_probes_by_label():
    registry = MetricsRegistry()
    registry.register_probe("depth", lambda: 1.0, silo="s1")
    registry.register_probe("depth", lambda: 2.0, silo="s2")
    registry.register_probe("other", lambda: 3.0, silo="s1", az="a")
    assert registry.unregister_probes(silo="s1") == 2
    assert set(registry.snapshot()) == {"depth{silo=s2}"}


def test_snapshot_selector_filters_by_labels():
    registry = MetricsRegistry()
    registry.counter("asks", silo="s1").inc(1)
    registry.counter("asks", silo="s2").inc(10)
    registry.gauge("depth", silo="s1").set(4.0)
    per_silo = registry.snapshot(silo="s1")
    assert per_silo == {"asks{silo=s1}": 1.0, "depth{silo=s1}": 4.0}


def test_cluster_totals_sum_across_silos_and_skip_histograms():
    registry = MetricsRegistry()
    registry.counter("asks", silo="s1").inc(1)
    registry.counter("asks", silo="s2").inc(10)
    registry.histogram("lat", silo="s1").observe(0.5)
    registry.register_probe("depth", lambda: 2.5, silo="s1")
    registry.register_probe("depth", lambda: 1.5, silo="s2")
    totals = registry.cluster_totals()
    assert totals["asks"] == 11.0
    assert totals["depth"] == 4.0
    assert "lat" not in totals


def test_instruments_repr_do_not_crash():
    assert "Counter" in repr(Counter("a", {}))
    assert "Gauge" in repr(Gauge("b", {"x": "y"}))
