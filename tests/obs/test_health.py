"""Unit tests for the SLO health monitor: rules, hysteresis, alerts."""

import math

import pytest

from repro.kernel.scheduler import Scheduler
from repro.obs.health import Alert, HealthMonitor, SloRule, default_slo_rules
from repro.obs.metrics import MetricsRegistry


def make_monitor(rules, registry=None):
    registry = registry or MetricsRegistry()
    return registry, HealthMonitor(registry, rules)


def test_rule_validation_rejects_bad_fields():
    with pytest.raises(ValueError, match="unknown op"):
        SloRule(name="r", metric="m", op="==").validate()
    with pytest.raises(ValueError, match="unknown mode"):
        SloRule(name="r", metric="m", mode="delta").validate()
    with pytest.raises(ValueError, match="unknown aggregate"):
        SloRule(name="r", metric="m", aggregate="avg").validate()
    with pytest.raises(ValueError, match="negative hysteresis"):
        SloRule(name="r", metric="m", for_seconds=-1.0).validate()


def test_duplicate_rule_names_rejected():
    rules = [SloRule(name="r", metric="a"), SloRule(name="r", metric="b")]
    with pytest.raises(ValueError, match="duplicate"):
        HealthMonitor(MetricsRegistry(), rules)


def test_value_rule_fires_and_clears_on_transitions_only():
    registry, monitor = make_monitor(
        [SloRule(name="depth", metric="queue.depth", op=">", threshold=5.0)]
    )
    gauge = registry.gauge("queue.depth")
    gauge.set(3.0)
    assert monitor.evaluate(0.0) == []
    gauge.set(9.0)
    emitted = monitor.evaluate(1.0)
    assert [a.state for a in emitted] == ["firing"]
    assert emitted[0].value == 9.0
    assert monitor.active() == ["depth"]
    # Still breaching: no re-emission while firing.
    assert monitor.evaluate(2.0) == []
    gauge.set(1.0)
    cleared = monitor.evaluate(3.0)
    assert [a.state for a in cleared] == ["cleared"]
    assert monitor.active() == []
    # Stable below threshold: again nothing.
    assert monitor.evaluate(4.0) == []
    assert len(monitor.alerts) == 2


def test_hysteresis_delays_firing_and_clearing():
    registry, monitor = make_monitor(
        [
            SloRule(
                name="lat",
                metric="lat",
                op=">",
                threshold=1.0,
                for_seconds=2.0,
                clear_seconds=2.0,
            )
        ]
    )
    gauge = registry.gauge("lat")
    gauge.set(5.0)
    assert monitor.evaluate(0.0) == []  # breach starts, not sustained yet
    assert monitor.evaluate(1.0) == []
    assert [a.state for a in monitor.evaluate(2.0)] == ["firing"]
    gauge.set(0.0)
    assert monitor.evaluate(3.0) == []  # recovery starts, not sustained yet
    assert monitor.evaluate(4.0) == []
    assert [a.state for a in monitor.evaluate(5.0)] == ["cleared"]


def test_hysteresis_resets_on_flap():
    registry, monitor = make_monitor(
        [SloRule(name="r", metric="m", op=">", threshold=1.0, for_seconds=2.0)]
    )
    gauge = registry.gauge("m")
    gauge.set(5.0)
    monitor.evaluate(0.0)
    gauge.set(0.0)
    monitor.evaluate(1.0)  # dips below: breach window resets
    gauge.set(5.0)
    assert monitor.evaluate(2.5) == []  # new breach only 0s old
    assert [a.state for a in monitor.evaluate(4.5)] == ["firing"]


def test_rate_mode_needs_two_samples():
    registry, monitor = make_monitor(
        [
            SloRule(
                name="goodput",
                metric="ingest.accepted",
                mode="rate",
                op="<",
                threshold=10.0,
            )
        ]
    )
    counter = registry.counter("ingest.accepted")
    counter.inc(100.0)
    assert monitor.evaluate(0.0) == []  # first sample: no rate yet
    assert math.isnan(monitor.last_value("goodput"))
    counter.inc(5.0)  # 5 events over 1s → rate 5 < 10 → breach
    emitted = monitor.evaluate(1.0)
    assert [a.state for a in emitted] == ["firing"]
    assert emitted[0].value == pytest.approx(5.0)
    counter.inc(50.0)
    assert [a.state for a in monitor.evaluate(2.0)] == ["cleared"]


def test_value_field_reads_histogram_summaries():
    registry, monitor = make_monitor(
        [
            SloRule(
                name="p99",
                metric="ask.latency",
                value_field="p99",
                op=">",
                threshold=0.5,
            )
        ]
    )
    histogram = registry.histogram("ask.latency")
    for _ in range(100):
        histogram.observe(2.0)
    emitted = monitor.evaluate(0.0)
    assert [a.state for a in emitted] == ["firing"]
    assert monitor.last_value("p99") == pytest.approx(2.0)


def test_aggregate_max_across_label_sets():
    registry, monitor = make_monitor(
        [
            SloRule(
                name="backlog",
                metric="silo.mailbox_depth",
                aggregate="max",
                op=">",
                threshold=10.0,
            )
        ]
    )
    registry.gauge("silo.mailbox_depth", silo="s1").set(2.0)
    registry.gauge("silo.mailbox_depth", silo="s2").set(50.0)
    emitted = monitor.evaluate(0.0)
    assert [a.state for a in emitted] == ["firing"]
    assert emitted[0].value == 50.0


def test_absent_metric_is_skipped_not_breached():
    _registry, monitor = make_monitor(
        [SloRule(name="ghost", metric="not.deployed", op=">", threshold=0.0)]
    )
    assert monitor.evaluate(0.0) == []
    assert monitor.active() == []
    assert math.isnan(monitor.last_value("ghost"))


def test_alert_log_is_bounded():
    registry, monitor = make_monitor(
        [SloRule(name="r", metric="m", op=">", threshold=0.5)],
    )
    monitor.max_alerts = 3
    gauge = registry.gauge("m")
    for tick in range(4):  # 4 fire + 4 clear transitions = 8 alerts
        gauge.set(1.0)
        monitor.evaluate(float(2 * tick))
        gauge.set(0.0)
        monitor.evaluate(float(2 * tick + 1))
    assert len(monitor.alerts) == 3
    assert monitor.alerts_dropped == 5
    # The log keeps the most recent transitions.
    assert monitor.alerts[-1].state == "cleared"
    assert monitor.alerts[-1].at == 7.0


def test_listeners_receive_every_alert():
    registry, monitor = make_monitor(
        [SloRule(name="r", metric="m", op=">", threshold=0.5)]
    )
    seen: list[Alert] = []
    monitor.listeners.append(seen.append)
    gauge = registry.gauge("m")
    gauge.set(1.0)
    monitor.evaluate(0.0)
    gauge.set(0.0)
    monitor.evaluate(1.0)
    assert [a.state for a in seen] == ["firing", "cleared"]
    assert seen[0].as_dict()["rule"] == "r"


def test_monitor_probes_registered():
    registry, monitor = make_monitor(
        [SloRule(name="r", metric="m", op=">", threshold=0.5)]
    )
    registry.gauge("m").set(1.0)
    monitor.evaluate(0.0)
    snapshot = registry.snapshot()
    assert snapshot["health.active_alerts"] == 1
    assert snapshot["health.alerts_emitted"] == 1
    assert snapshot["health.evaluations"] == 1


def test_attach_evaluates_on_virtual_timer():
    scheduler = Scheduler()
    registry, monitor = make_monitor(
        [SloRule(name="r", metric="m", op=">", threshold=0.5)]
    )
    registry.gauge("m").set(2.0)
    monitor.attach(scheduler, interval=0.5)
    with pytest.raises(RuntimeError, match="already attached"):
        monitor.attach(scheduler, interval=0.5)

    async def run():
        await scheduler.sleep(2.1)

    scheduler.run_until_complete(run())
    monitor.detach()
    monitor.detach()  # idempotent
    assert monitor.evaluations == 4
    assert monitor.active() == ["r"]
    # Detached: virtual time advancing evaluates nothing further.
    async def idle():
        await scheduler.sleep(5.0)

    scheduler.run_until_complete(idle())
    assert monitor.evaluations == 4


def test_attach_rejects_nonpositive_interval():
    _registry, monitor = make_monitor([])
    with pytest.raises(ValueError, match="positive"):
        monitor.attach(Scheduler(), interval=0.0)


def test_default_rules_are_valid_and_cover_the_objectives():
    rules = default_slo_rules()
    names = {rule.name for rule in rules}
    assert names == {
        "ask-p99-latency",
        "ingest-goodput",
        "heartbeat-misses",
        "silo-quarantined",
        "mailbox-backlog",
        "error-rate",
        "cluster-imbalance",
        "trace-drops",
        "view-staleness",
        "tsblocks-head-memory",
    }
    # Constructible on an empty registry, and safe to evaluate.
    _registry, monitor = make_monitor(rules)
    assert monitor.evaluate(0.0) == []
