"""Unit tests for the causal tracer: spans, trees, invariants."""

import pytest

from repro.obs.trace import Span, TraceTree, Tracer, span_summary
from repro.runtime.key import ActorKey


# -- producing ----------------------------------------------------------------


def test_disabled_tracer_produces_nothing():
    tracer = Tracer(enabled=False)
    assert tracer.begin("x", "ask", "client", 0.0) is None
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_begin_assigns_ids_and_defaults():
    tracer = Tracer()
    span = tracer.begin("op", "ask", "client", 1.5)
    assert span.span_id == 1
    assert span.parent_id is None
    assert span.trace_id == span.span_id  # roots start their own trace
    assert span.start == 1.5
    assert span.end is None
    assert span.status == "open"
    assert span.duration == 0.0  # open spans have no duration yet


def test_child_inherits_trace_id():
    tracer = Tracer()
    root = tracer.begin("root", "client", "client", 0.0)
    child = tracer.begin("child", "ask", "silo-0", 0.1, parent=root)
    assert child.parent_id == root.span_id
    assert child.trace_id == root.trace_id


def test_explicit_start_overrides_now():
    tracer = Tracer()
    span = tracer.begin("op", "ask", "client", 5.0, start=2.0)
    assert span.start == 2.0


def test_capacity_drops_and_counts():
    tracer = Tracer(max_spans=2)
    assert tracer.begin("a", "ask", "c", 0.0) is not None
    assert tracer.begin("b", "ask", "c", 0.0) is not None
    assert tracer.begin("c", "ask", "c", 0.0) is None
    assert tracer.dropped == 1
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
    assert tracer.begin("d", "ask", "c", 0.0) is not None


def test_lazy_name_builds_from_key_and_method():
    tracer = Tracer()
    key = ActorKey("Sensor", "org-0/s-1")
    span = tracer.begin(key, "ask", "client", 0.0, method="ingest")
    # Built on first read, cached thereafter.
    assert span.name == "Sensor/org-0/s-1.ingest"
    assert span.name == "Sensor/org-0/s-1.ingest"


def test_plain_string_names_pass_through():
    tracer = Tracer()
    span = tracer.begin("insert-wave", "client", "client", 0.0)
    assert span.name == "insert-wave"


def test_finish_is_idempotent_first_wins():
    tracer = Tracer()
    span = tracer.begin("op", "ask", "c", 0.0)
    tracer.finish(span, 1.0, status="error", error="boom")
    tracer.finish(span, 9.0, status="ok")
    assert span.end == 1.0
    assert span.status == "error"
    assert span.error == "boom"
    tracer.finish(None, 2.0)  # None span is a no-op, not a crash


def test_breakdown_sums_to_duration():
    tracer = Tracer()
    span = tracer.begin("op", "ask", "c", 0.0)
    span.queue += 0.1
    span.cpu += 0.2
    span.network += 0.3
    span.storage += 0.05
    tracer.finish(span, 1.0)
    parts = span.breakdown()
    assert parts["other"] == pytest.approx(1.0 - 0.65)
    assert sum(parts.values()) == pytest.approx(span.duration)


# -- consuming ----------------------------------------------------------------


def make_trace():
    """root -> (a -> (a1, a2), b); two traces in one tracer."""
    tracer = Tracer()
    root = tracer.begin("root", "client", "client", 0.0)
    a = tracer.begin("a", "ask", "client", 0.1, parent=root)
    b = tracer.begin("b", "ask", "client", 0.2, parent=root)
    a1 = tracer.begin("a1", "ask", "silo", 0.3, parent=a)
    a2 = tracer.begin("a2", "tell", "silo", 0.4, parent=a)
    other = tracer.begin("elsewhere", "client", "client", 0.0)
    for span, end in ((a1, 0.5), (a2, 0.9), (a, 0.6), (b, 0.7), (root, 1.0),
                      (other, 0.1)):
        tracer.finish(span, end)
    return tracer, root, a, b, a1, a2, other


def test_spans_filter_by_trace_id():
    tracer, root, *_rest, other = make_trace()
    mine = tracer.spans(root.trace_id)
    assert len(mine) == 5
    assert all(s.trace_id == root.trace_id for s in mine)
    assert len(tracer.spans()) == 6
    assert {s.name for s in tracer.roots()} == {"root", "elsewhere"}
    assert [s.name for s in tracer.find_roots("else")] == ["elsewhere"]


def test_tree_walk_is_depth_first_in_start_order():
    tracer, root, *_ = make_trace()
    tree = TraceTree.build(tracer.spans(root.trace_id), root)
    assert [(d, s.name) for d, s in tree.walk()] == [
        (0, "root"), (1, "a"), (2, "a1"), (2, "a2"), (1, "b"),
    ]
    assert tree.size() == 5


def test_tree_build_requires_unique_root_when_not_given():
    tracer, root, *_rest, other = make_trace()
    tree = TraceTree.build(tracer.spans(root.trace_id))
    assert tree.root is root
    with pytest.raises(ValueError):
        TraceTree.build(tracer.spans())  # two roots: ambiguous


def test_critical_path_follows_latest_finisher():
    tracer, root, a, _b, _a1, a2, _other = make_trace()
    tree = TraceTree.build(tracer.spans(root.trace_id), root)
    # b (end 0.7) outlasts a (0.6) at depth 1; b has no children.
    assert [s.name for s in tree.critical_path()] == ["root", "b"]
    subtree = TraceTree.build(tracer.spans(root.trace_id), a)
    assert [s.name for s in subtree.critical_path()] == ["a", "a2"]


def test_tree_totals_accumulate_components():
    tracer, root, a, *_ = make_trace()
    a.cpu += 0.25
    tree = TraceTree.build(tracer.spans(root.trace_id), root)
    totals = tree.totals()
    assert totals["cpu"] == pytest.approx(0.25)
    durations = sum(s.duration for _d, s in tree.walk())
    assert sum(totals.values()) == pytest.approx(durations)


def test_span_summary_is_serializable_view():
    tracer, root, *_ = make_trace()
    view = span_summary(root)
    assert view["name"] == "root"
    assert view["duration"] == pytest.approx(1.0)
    assert view["queue"] == 0.0
    assert view["status"] == "ok"
