"""Rendering tests: tree truncation trailer, profile/health/alert text."""

from repro.obs.health import Alert, HealthMonitor, SloRule
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileRecord, ProfileReport
from repro.obs.render import (
    render_alerts,
    render_health,
    render_profile,
    render_tree,
)
from repro.obs.trace import TraceTree, Tracer


def build_chain_tree(depth: int) -> TraceTree:
    """A root with ``depth`` descendants in a straight caller→callee chain."""
    tracer = Tracer(enabled=True, max_spans=depth + 10)
    root = tracer.begin("root", "client", "client", 0.0)
    parent = root
    for index in range(depth):
        span = tracer.begin(f"step-{index}", "ask", "silo-0", float(index))
        span.parent_id = parent.span_id
        span.trace_id = root.trace_id
        tracer.finish(span, float(index) + 0.5)
        parent = span
    tracer.finish(root, float(depth))
    return TraceTree.build(tracer.spans(), root=root)


def test_render_tree_truncates_deep_trees_with_explicit_trailer():
    tree = build_chain_tree(depth=30)
    text = render_tree(tree, max_lines=10)
    lines = text.splitlines()
    # Header + 10 span lines + the explicit truncation trailer.
    assert len(lines) == 12
    assert lines[-1] == "  … 21 more spans"  # 31 spans total, 10 shown
    assert "(31 spans" in lines[0]


def test_render_tree_complete_when_under_the_limit():
    tree = build_chain_tree(depth=3)
    text = render_tree(tree, max_lines=200)
    assert "more spans" not in text
    assert len(text.splitlines()) == 5  # header + root + 3 steps


def make_report(**overrides) -> ProfileReport:
    hot = ProfileRecord("Sensor.ingest")
    hot.calls = 10
    hot.cpu_service = 0.008
    hot.queue_wait = 0.001
    cold = ProfileRecord("Sensor.latest")
    cold.calls = 2
    cold.cpu_service = 0.002
    cold.errors = 1
    activation = ProfileRecord("Sensor/org-0/s-1")
    activation.calls = 12
    activation.cpu_service = 0.01
    fields = dict(
        total_cpu_seconds=0.01,
        attributed_cpu_seconds=0.01,
        turns=12,
        rows=[hot, cold],
        hot_activations=[activation],
        backlogs=[("Sensor/org-0/s-1", 7, "silo-0")],
    )
    fields.update(overrides)
    return ProfileReport(**fields)


def test_render_profile_shows_rows_shares_and_backlogs():
    text = render_profile(make_report())
    assert "100.0% coverage" in text
    assert "Sensor.ingest" in text
    assert "80.0%" in text  # 0.008 of 0.010
    assert "errors=1" in text
    assert "Sensor/org-0/s-1 @silo-0  depth=7" in text


def test_render_profile_truncates_rows_and_reports_overflow():
    rows = []
    for index in range(5):
        row = ProfileRecord(f"A.m{index}")
        row.cpu_service = 0.001
        rows.append(row)
    report = make_report(rows=rows, method_overflow=3, activation_overflow=2)
    text = render_profile(report, max_rows=2)
    assert "… 3 more rows" in text
    assert "3 method fetches" in text
    assert "2 activation fetches" in text


def test_render_profile_handles_empty_report():
    report = make_report(
        total_cpu_seconds=0.0, attributed_cpu_seconds=0.0, turns=0,
        rows=[], hot_activations=[], backlogs=[],
    )
    text = render_profile(report)
    assert "(none)" in text


def test_render_alerts_one_transition_per_line():
    alerts = [
        Alert("r", "critical", "firing", 1.0, 9.0, 5.0),
        Alert("r", "critical", "cleared", 3.0, 1.0, 5.0),
    ]
    text = render_alerts(alerts)
    lines = text.splitlines()
    assert "FIRING" in lines[1] and "value 9 vs threshold 5" in lines[1]
    assert "cleared" in lines[2]
    assert render_alerts([]).splitlines()[1] == "  (none)"


def test_render_health_lists_rule_states():
    registry = MetricsRegistry()
    monitor = HealthMonitor(
        registry,
        [
            SloRule(name="depth", metric="queue.depth", op=">", threshold=5.0),
            SloRule(name="ghost", metric="not.deployed", op=">", threshold=0.0),
        ],
    )
    registry.gauge("queue.depth").set(9.0)
    monitor.evaluate(1.0)
    text = render_health(monitor)
    assert "1 of 2 rules firing" in text
    assert "[FIRING] depth: queue.depth > 5 (last 9)" in text
    assert "[ok    ] ghost: not.deployed > 0 (last n/a)" in text
    assert "alert history:" in text
