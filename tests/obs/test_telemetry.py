"""Tests for the self-hosted telemetry actors and the ingestion pump."""

import math

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.obs.health import HealthMonitor, SloRule
from repro.obs.telemetry import TELEMETRY_PREFIXES, TelemetryPump, flatten_snapshot
from repro.runtime import AodbRuntime, RuntimeConfig


# -- snapshot flattening -------------------------------------------------------


def test_flatten_sums_label_sets_by_bare_name():
    snapshot = {
        "runtime.asks{silo=s1}": 3.0,
        "runtime.asks{silo=s2}": 4.0,
        "runtime.tells": 2.0,
    }
    flat = flatten_snapshot(snapshot)
    assert flat == {"runtime.asks": 7.0, "runtime.tells": 2.0}


def test_flatten_filters_by_prefix():
    snapshot = {"runtime.asks": 1.0, "myapp.widgets": 5.0}
    assert flatten_snapshot(snapshot) == {"runtime.asks": 1.0}
    assert flatten_snapshot(snapshot, include=()) == {
        "runtime.asks": 1.0,
        "myapp.widgets": 5.0,
    }


def test_flatten_expands_histogram_summaries():
    snapshot = {
        "runtime.ask_latency_seconds{silo=s1}": {
            "count": 10, "sum": 1.0, "mean": 0.1,
            "min": 0.05, "max": 0.3, "p50": 0.1, "p99": 0.3,
        },
        "runtime.ask_latency_seconds{silo=s2}": {
            "count": 4, "sum": 2.0, "mean": 0.5,
            "min": 0.2, "max": 0.9, "p50": 0.5, "p99": 0.9,
        },
    }
    flat = flatten_snapshot(snapshot)
    # Quantiles/means take the worst across label sets; counts add.
    assert flat["runtime.ask_latency_seconds.p99"] == 0.9
    assert flat["runtime.ask_latency_seconds.p50"] == 0.5
    assert flat["runtime.ask_latency_seconds.mean"] == 0.5
    assert flat["runtime.ask_latency_seconds.count"] == 14
    assert "runtime.ask_latency_seconds.sum" not in flat


def test_flatten_skips_nan_probe_values():
    snapshot = {"runtime.dead_probe": math.nan, "runtime.alive": 1.0}
    assert flatten_snapshot(snapshot) == {"runtime.alive": 1.0}


def test_default_prefixes_cover_the_platform_subsystems():
    for prefix in ("runtime.", "silo.", "health.", "profile.", "cluster."):
        assert prefix in TELEMETRY_PREFIXES


# -- a tiny real runtime for the actor tests -----------------------------------


@pytest.fixture()
def cluster():
    scheduler = Scheduler()
    config = RuntimeConfig(
        default_method_cost=0.0, activation_cost=0.0, copy_messages=False
    )
    runtime = AodbRuntime(
        scheduler,
        config=config,
        network=Network(scheduler, lan=ConstantLatency(0.0)),
    )
    runtime.add_silo("s1", cores=2)
    runtime.add_silo("s2", cores=2)
    return scheduler, runtime


def test_silo_monitor_records_and_answers_range_queries(cluster):
    scheduler, runtime = cluster
    pump = TelemetryPump(runtime)
    pump.install()

    async def run():
        ref = runtime.ref("SiloMonitor", "s1")
        await ref.configure(window_capacity=16)
        await ref.record(1.0, {"runtime.asks": 5.0})
        await ref.record(2.0, {"runtime.asks": 8.0, "runtime.tells": 1.0})
        assert await ref.series_names() == ["runtime.asks", "runtime.tells"]
        assert await ref.query_range("runtime.asks", 0.0, 10.0) == [
            (1.0, 5.0), (2.0, 8.0),
        ]
        assert await ref.query_range("runtime.asks", 1.5, 10.0) == [(2.0, 8.0)]
        assert await ref.query_range("unknown", 0.0, 10.0) == []
        assert await ref.latest("runtime.asks") == (2.0, 8.0)
        assert await ref.latest("unknown") is None
        info = await ref.describe()
        assert info["series"] == 2
        assert info["window_capacity"] == 16

    scheduler.run_until_complete(run())


def test_silo_monitor_caps_series_cardinality(cluster):
    scheduler, runtime = cluster
    TelemetryPump(runtime).install()

    async def run():
        ref = runtime.ref("SiloMonitor", "s1")
        await ref.configure(max_series=2)
        stored = await ref.record(
            1.0, {"runtime.a": 1.0, "runtime.b": 2.0, "runtime.c": 3.0}
        )
        assert stored == 2
        info = await ref.describe()
        assert info["series"] == 2
        assert info["series_dropped"] == 1
        # Known series keep recording; the dropped one stays dropped.
        await ref.record(2.0, {"runtime.a": 4.0, "runtime.c": 5.0})
        assert await ref.query_range("runtime.a", 0.0, 9.0) == [
            (1.0, 1.0), (2.0, 4.0),
        ]
        assert await ref.query_range("runtime.c", 0.0, 9.0) == []

    scheduler.run_until_complete(run())


def test_aggregator_bounded_bucket_retention(cluster):
    scheduler, runtime = cluster
    TelemetryPump(runtime).install()

    async def run():
        ref = runtime.ref("TelemetryAggregator", "cluster")
        await ref.configure(bucket_seconds=5.0, max_buckets=3)
        # Ten bucket-widths of samples: only the newest three survive.
        for tick in range(10):
            await ref.merge(tick * 5.0, {"runtime.asks": float(tick)})
        series = await ref.series("runtime.asks", 0.0, 100.0)
        assert [bucket for bucket, _ in series] == [7, 8, 9]
        assert await ref.stats_at("runtime.asks", 0.0) is None
        newest = await ref.stats_at("runtime.asks", 45.0)
        assert newest["count"] == 1

    scheduler.run_until_complete(run())


def test_aggregator_buckets_and_alert_log(cluster):
    scheduler, runtime = cluster
    TelemetryPump(runtime).install()

    async def run():
        ref = runtime.ref("TelemetryAggregator", "cluster")
        await ref.configure(bucket_seconds=5.0, max_alerts=2)
        await ref.merge(1.0, {"runtime.asks": 10.0})
        await ref.merge(2.0, {"runtime.asks": 20.0})
        await ref.merge(7.0, {"runtime.asks": 30.0})
        assert await ref.metric_names() == ["runtime.asks"]
        series = await ref.series("runtime.asks", 0.0, 10.0)
        assert len(series) == 2  # two 5-second buckets
        first = await ref.stats_at("runtime.asks", 2.0)
        assert first["count"] == 2
        assert first["mean"] == pytest.approx(15.0)
        assert await ref.stats_at("runtime.asks", 100.0) is None
        assert await ref.stats_at("unknown", 0.0) is None
        # Alert log is bounded, oldest dropped first.
        for index in range(3):
            await ref.record_alert({"rule": f"r{index}", "state": "firing"})
        alerts = await ref.alerts()
        assert [a["rule"] for a in alerts] == ["r1", "r2"]
        assert await ref.alerts(limit=0) == []
        info = await ref.describe()
        assert info["samples"] == 3
        assert info["alerts"] == 2

    scheduler.run_until_complete(run())


def test_pump_ships_snapshots_matching_actor_history(cluster):
    scheduler, runtime = cluster
    runtime.stats.asks += 0  # touch, so the registry has runtime counters
    pump = TelemetryPump(runtime, interval=1.0)

    async def run():
        shipment = await pump.tick()
        now = scheduler.now
        # Every per-silo shipment is stored verbatim and queryable by ask.
        for silo_id in ("s1", "s2"):
            values = shipment[silo_id]
            assert values, "per-silo snapshot should not be empty"
            ref = runtime.ref("SiloMonitor", silo_id)
            for metric, value in values.items():
                assert await ref.latest(metric) == (now, value)
        # The cluster-wide rollup landed in the aggregator.
        cluster_values = shipment["cluster"]
        aggregator = runtime.ref("TelemetryAggregator", pump.aggregator_id)
        names = await aggregator.metric_names()
        for metric in cluster_values:
            assert metric in names
        assert pump.ticks == 1
        assert pump.tick_errors == 0

    pump.install()
    scheduler.run_until_complete(run())


def test_pump_loop_ticks_on_virtual_timer(cluster):
    scheduler, runtime = cluster
    pump = TelemetryPump(runtime, interval=1.0)
    pump.start()
    with pytest.raises(RuntimeError, match="already started"):
        pump.start()

    async def run():
        await scheduler.sleep(3.5)

    scheduler.run_until_complete(run())
    pump.stop()
    assert pump.ticks == 3
    ticks_after_stop = pump.ticks

    async def idle():
        await scheduler.sleep(5.0)

    scheduler.run_until_complete(idle())
    assert pump.ticks == ticks_after_stop


def test_pump_rejects_nonpositive_interval(cluster):
    _scheduler, runtime = cluster
    with pytest.raises(ValueError, match="positive"):
        TelemetryPump(runtime, interval=0.0)


def test_pump_forwards_health_alerts_into_aggregator(cluster):
    scheduler, runtime = cluster
    rule = SloRule(name="depth", metric="queue.depth", op=">", threshold=5.0)
    monitor = HealthMonitor(runtime.metrics, [rule])
    pump = TelemetryPump(runtime, interval=1.0, monitor=monitor)
    pump.start()
    gauge = runtime.metrics.gauge("queue.depth")

    async def run():
        gauge.set(9.0)
        monitor.evaluate(scheduler.now)  # emits "firing" → listener tells
        gauge.set(0.0)
        monitor.evaluate(scheduler.now)  # emits "cleared"
        await scheduler.sleep(1.5)  # drain the one-way tells + one tick
        aggregator = runtime.ref("TelemetryAggregator", pump.aggregator_id)
        log = await aggregator.alerts()
        assert [(a["rule"], a["state"]) for a in log] == [
            ("depth", "firing"), ("depth", "cleared"),
        ]

    scheduler.run_until_complete(run())
    pump.stop()
    # stop() unsubscribes: further alerts no longer reach the pump.
    assert pump._on_alert not in monitor.listeners


def test_telemetry_metrics_probes_registered(cluster):
    scheduler, runtime = cluster
    pump = TelemetryPump(runtime)
    pump.install()
    pump.install()  # idempotent
    snapshot = runtime.metrics.snapshot()
    assert snapshot["telemetry.ticks"] == 0
    assert snapshot["telemetry.tick_errors"] == 0
