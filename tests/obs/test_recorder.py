"""Unit tests for the flight recorder: rings, retention, postmortems."""

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.obs.health import HealthMonitor, SloRule
from repro.obs.recorder import (
    ANOMALY_KINDS,
    FlightRecorder,
    RecorderConfig,
    RingJournal,
    _LatencyReservoir,
    render_postmortem,
)
from repro.obs.trace import SPAN_KINDS, Tracer
from repro.runtime import AodbRuntime, RuntimeConfig


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


def make_recorder(clock=None, **knobs):
    clock = clock or FakeClock()
    return clock, FlightRecorder(clock, RecorderConfig(**knobs))


def make_traced(recorder):
    """A tracer routing completed root traces into ``recorder``."""
    tracer = Tracer(enabled=True)
    tracer.recorder = recorder
    return tracer


def finish_trace(tracer, clock, kind="ask", status="ok", error="",
                 duration=0.01, child_kind=None, child_error="",
                 attempt=0):
    """Drive one two-span trace through the tracer; returns the root."""
    start = clock.now
    root = tracer.begin("Actor/1.method", kind, "client", start)
    child = tracer.begin(
        "Actor/2.child", child_kind or "tell", "Actor/1", start, parent=root
    )
    child.attempt = attempt
    tracer.finish(child, start + duration / 2, error=child_error)
    clock.now = start + duration
    tracer.finish(root, clock.now, status=status, error=error)
    return root


# -- ring journals --------------------------------------------------------


def test_ring_wraps_and_returns_oldest_first():
    clock = FakeClock()
    ring = RingJournal("test", clock, capacity=8)
    for i in range(11):
        clock.now = float(i)
        ring.record("event", i)
    entries = ring.entries()
    assert len(entries) == 8 == len(ring)
    # The three oldest events were overwritten by the wrap.
    assert [a for _t, _k, a, _b in entries] == list(range(3, 11))
    assert [t for t, _k, _a, _b in entries] == [float(i) for i in range(3, 11)]
    assert [a for _t, _k, a, _b in ring.entries(last=2)] == [9, 10]


def test_ring_clear_and_disable():
    clock = FakeClock()
    ring = RingJournal("test", clock, capacity=8)
    ring.record("a")
    ring.clear()
    assert ring.entries() == [] and len(ring) == 0
    ring.enabled = False
    ring.record("b")
    assert ring.entries() == []


def test_ring_rejects_tiny_capacity():
    with pytest.raises(ValueError, match=">= 8"):
        RingJournal("test", FakeClock(), capacity=4)


def test_config_validation():
    with pytest.raises(ValueError, match="ring_size"):
        RecorderConfig(ring_size=4).validate()
    with pytest.raises(ValueError, match="tail_keep_rate"):
        RecorderConfig(tail_keep_rate=1.5).validate()
    with pytest.raises(ValueError, match="max_postmortems"):
        RecorderConfig(max_postmortems=0).validate()


# -- latency reservoir ----------------------------------------------------


def test_reservoir_is_deterministic_per_seed():
    def fill(seed):
        reservoir = _LatencyReservoir(16, seed, refresh=8)
        for i in range(200):
            reservoir.observe((i * 7919 % 100) / 1000.0)
        return reservoir._samples, reservoir.p99()

    assert fill(42) == fill(42)
    assert fill(42) != fill(43)


def test_reservoir_p99_without_samples_is_infinite():
    assert _LatencyReservoir(16, 0).p99() == float("inf")


# -- tail-based retention -------------------------------------------------


def test_healthy_traces_downsample_to_a_counter():
    clock, recorder = make_recorder()
    tracer = make_traced(recorder)
    for _ in range(10):
        finish_trace(tracer, clock)
    assert recorder.completed_traces == 10
    assert recorder.downsampled_traces == 10
    assert recorder.retained() == []
    assert recorder.downsampled_by_kind == {"ask": 10}
    # Spans routed to the recorder, not accumulated in the tracer.
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_error_statuses_and_retries_are_retained():
    clock, recorder = make_recorder()
    tracer = make_traced(recorder)
    finish_trace(tracer, clock, status="error", error="boom")
    finish_trace(tracer, clock, child_error="deadline")
    finish_trace(tracer, clock, attempt=1)
    reasons = [rt.reason for rt in recorder.retained()]
    assert reasons == ["status:error", "span-error", "span-error"]
    retained = recorder.retained()[0]
    assert recorder.retained_trace(retained.trace_id) is retained
    assert len(retained.spans) == 2
    # Spans come back in causal (start, span_id) order.
    assert [s.span_id for s in retained.spans] == sorted(
        s.span_id for s in retained.spans
    )


def test_anomaly_kinds_are_retained():
    assert ANOMALY_KINDS <= set(SPAN_KINDS)
    clock, recorder = make_recorder()
    tracer = make_traced(recorder)
    for kind in sorted(ANOMALY_KINDS):
        finish_trace(tracer, clock, child_kind=kind)
    assert sorted(rt.reason for rt in recorder.retained()) == sorted(
        f"anomaly:{kind}" for kind in ANOMALY_KINDS
    )
    assert recorder.anomalous() == recorder.retained()


def test_p99_outliers_are_retained_after_warmup():
    clock, recorder = make_recorder(min_latency_samples=16, p99_refresh=4)
    tracer = make_traced(recorder)
    for _ in range(32):
        finish_trace(tracer, clock, duration=0.01)
    assert recorder.retained() == []  # all healthy, all near p50
    finish_trace(tracer, clock, duration=5.0)
    assert [rt.reason for rt in recorder.retained()] == ["p99:ask"]
    # The outlier was scored against *prior* history, then fed back in;
    # an equally slow successor still trips the (refreshed) estimate.
    for _ in range(8):
        finish_trace(tracer, clock, duration=0.01)
    finish_trace(tracer, clock, duration=50.0)
    assert [rt.reason for rt in recorder.retained()] == ["p99:ask", "p99:ask"]


def test_tail_sampling_keeps_a_deterministic_one_in_n():
    clock, recorder = make_recorder(tail_keep_rate=0.25)
    tracer = make_traced(recorder)
    for _ in range(20):
        finish_trace(tracer, clock)
    samples = [rt for rt in recorder.retained() if rt.reason == "tail-sample"]
    assert len(samples) == 5  # traces 1, 5, 9, 13, 17
    assert recorder.anomalous() == []
    assert recorder.downsampled_traces == 15


def test_retained_store_evicts_fifo():
    clock, recorder = make_recorder(max_retained=3)
    tracer = make_traced(recorder)
    roots = [
        finish_trace(tracer, clock, status="error", error="boom")
        for _ in range(5)
    ]
    kept = recorder.retained()
    assert len(kept) == 3
    assert [rt.trace_id for rt in kept] == [r.trace_id for r in roots[-3:]]
    assert recorder.retained_evicted == 2
    assert recorder.retained_trace(roots[0].trace_id) is None


def test_clear_resets_everything():
    clock, recorder = make_recorder(tail_keep_rate=1.0)
    tracer = make_traced(recorder)
    finish_trace(tracer, clock)
    recorder.journal("kernel").record("x")
    recorder.record_incident("test", {})
    recorder.clear()
    assert recorder.completed_traces == 0
    assert recorder.retained() == []
    assert recorder.postmortems == []
    assert recorder.ring_entries() == 0


# -- postmortems ----------------------------------------------------------


def test_postmortem_merges_rings_and_traces_in_causal_order():
    clock, recorder = make_recorder()
    tracer = make_traced(recorder)
    clock.now = 1.0
    recorder.journal("kernel").record("timer-fire", 7)
    clock.now = 2.0
    finish_trace(tracer, clock, status="error", error="boom", duration=0.5)
    clock.now = 3.0
    recorder.journal("net").record("partition-block", "a", "b")
    clock.now = 4.0
    postmortem = recorder.record_incident(
        "alert", {"rule": "r", "at": 3.5}
    )
    times = [t for t, _s, _t2 in postmortem.timeline]
    assert times == sorted(times)
    sources = postmortem.sources()
    retained = recorder.retained()[0]
    assert sources == {"trigger", "kernel", "net", f"trace:{retained.trace_id}"}
    # The full trace rides along: marker + one line per span.
    trace_lines = [
        text for _t, s, text in postmortem.timeline
        if s == f"trace:{retained.trace_id}"
    ]
    assert len(trace_lines) == 1 + len(retained.spans)
    assert any(
        line.startswith("retained (status:error)") for line in trace_lines
    )
    # The trigger line lands at its own timestamp, not snapshot time.
    trigger_entry = next(e for e in postmortem.timeline if e[1] == "trigger")
    assert trigger_entry[0] == 3.5
    assert postmortem.at == 4.0
    rendered = render_postmortem(postmortem)
    assert "== postmortem @" in rendered
    assert "rule=r" in rendered
    assert postmortem.as_dict()["traces"][0]["reason"] == "status:error"


def test_postmortem_log_is_bounded():
    _clock, recorder = make_recorder(max_postmortems=2)
    assert recorder.record_incident("a") is not None
    assert recorder.record_incident("b") is not None
    assert recorder.record_incident("c") is None
    assert len(recorder.postmortems) == 2
    assert recorder.postmortems_dropped == 1


def test_pick_traces_prefers_recent_anomalies_padded_with_samples():
    clock, recorder = make_recorder(postmortem_traces=3, tail_keep_rate=1.0)
    tracer = make_traced(recorder)
    finish_trace(tracer, clock)  # tail-sample
    finish_trace(tracer, clock)  # tail-sample
    finish_trace(tracer, clock, status="error", error="boom")
    picked = recorder.record_incident("x").traces
    assert len(picked) == 3
    assert sorted(rt.reason for rt in picked) == [
        "status:error", "tail-sample", "tail-sample",
    ]
    # Chronological within the postmortem.
    assert [rt.retained_at for rt in picked] == sorted(
        rt.retained_at for rt in picked
    )


# -- wiring ---------------------------------------------------------------


def make_runtime():
    scheduler = Scheduler()
    runtime = AodbRuntime(
        scheduler,
        config=RuntimeConfig(),
        network=Network(scheduler, lan=ConstantLatency(0.0)),
        tracer=Tracer(enabled=True),
    )
    runtime.add_silo("s1", cores=2)
    runtime.add_silo("s2", cores=2)
    return scheduler, runtime


def test_attach_wires_tracer_journals_and_probes():
    scheduler, runtime = make_runtime()
    recorder = FlightRecorder(scheduler).attach(runtime)
    assert runtime.recorder is recorder
    assert runtime.tracer.recorder is recorder
    assert runtime.scheduler.journal is recorder.journal("kernel")
    assert runtime.network.journal is recorder.journal("net")
    assert runtime.grain_storage.journal is recorder.journal("storage")
    names = [ring.name for ring in recorder.journals()]
    assert names == sorted(names)
    assert {"kernel", "net", "storage", "elastic", "silo:s1", "silo:s2"} <= (
        set(names)
    )
    snapshot = runtime.metrics.snapshot()
    for probe in (
        "trace.dropped_spans",
        "trace.retained_traces",
        "recorder.downsampled_traces",
        "recorder.retained_evicted",
        "recorder.postmortems",
        "recorder.ring_entries",
    ):
        assert probe in snapshot
    with pytest.raises(RuntimeError, match="already attached"):
        recorder.attach(runtime)


def test_added_silo_gets_a_ring_and_timers_feed_the_kernel_ring():
    scheduler, runtime = make_runtime()
    recorder = FlightRecorder(scheduler).attach(runtime)
    runtime.add_silo("s3", cores=2)
    assert "silo:s3" in {ring.name for ring in recorder.journals()}

    # Explicit timers record both edges (fused sleeps skip the arm hook).
    handle = scheduler.call_later(0.2, lambda: None)
    scheduler.call_later(0.3, lambda: None)
    handle.cancel()

    async def tick():
        await scheduler.sleep(0.5)

    scheduler.run_until_complete(tick())
    kinds = {kind for _t, kind, _a, _b in recorder.journal("kernel").entries()}
    assert {"timer-arm", "timer-fire", "timer-cancel"} <= kinds


def test_firing_alert_snapshots_a_postmortem_cleared_does_not():
    scheduler, runtime = make_runtime()
    monitor = HealthMonitor(
        runtime.metrics,
        [SloRule(name="r", metric="m", op=">", threshold=0.5)],
    )
    recorder = FlightRecorder(scheduler).attach(runtime, monitor)
    gauge = runtime.metrics.gauge("m")
    gauge.set(1.0)
    monitor.evaluate(0.0)
    gauge.set(0.0)
    monitor.evaluate(1.0)
    assert len(recorder.postmortems) == 1
    assert recorder.postmortems[0].trigger["rule"] == "r"
    assert recorder.postmortems[0].trigger["state"] == "firing"
