"""Acceptance: a traced run reconstructs complete causal trees.

This is the ISSUE's acceptance criterion in executable form: a Fig 6-style
traced run yields the full caller→callee tree for (a) an insert wave and
(b) an organization live-data fan-out, with every span's queue/CPU/network/
storage breakdown summing to its end-to-end latency.
"""

import pytest

from repro.bench.tracebench import check_invariants, run_scenario

SENSORS = 4


@pytest.fixture(scope="module")
def scenario():
    return run_scenario(sensors=SENSORS)


def test_insert_wave_tree_is_complete(scenario):
    tree = scenario.insert_tree
    assert tree.root.kind == "client"
    assert tree.root.name == "insert-wave"
    # One ingest ask per sensor hangs directly under the client root...
    sensor_asks = tree.children(tree.root)
    assert len(sensor_asks) == SENSORS
    # ...and each fans out to both physical channels of the sensor.
    for ask in sensor_asks:
        assert ask.kind == "ask"
        channel_asks = [
            child for child in tree.children(ask) if child.kind == "ask"
        ]
        assert len(channel_asks) == 2
    assert check_invariants(tree) == []


def test_live_data_tree_reconstructs_the_fanout(scenario):
    tree = scenario.live_tree
    assert tree.root.kind == "client"
    (org_ask,) = tree.children(tree.root)
    assert "Organization/" in org_ask.name
    assert org_ask.name.endswith(".live_data")
    # The org fans out one `.latest` ask per channel of the tenant.
    fanout = tree.children(org_ask)
    assert len(fanout) >= 2 * SENSORS  # at least the physical channels
    assert all(child.name.endswith(".latest") for child in fanout)
    assert check_invariants(tree) == []


def test_breakdown_sums_to_end_to_end_latency(scenario):
    for tree in (scenario.insert_tree, scenario.live_tree):
        assert tree.root.duration > 0.0
        for _depth, span in tree.walk():
            assert span.end is not None, f"{span.name} never finished"
            parts = span.breakdown()
            for component in ("queue", "cpu", "network", "storage"):
                assert parts[component] >= 0.0, (
                    f"{span.name}: negative {component}"
                )
            assert sum(parts.values()) == pytest.approx(span.duration), (
                f"{span.name}: breakdown does not sum to latency"
            )


def test_critical_path_explains_the_root_latency(scenario):
    tree = scenario.live_tree
    path = tree.critical_path()
    assert path[0] is tree.root
    assert len(path) >= 3  # client -> org -> channel
    # At every level the path follows the child the parent actually waited
    # for: the latest finisher among its siblings.
    for parent, chosen in zip(path, path[1:]):
        siblings = [c for c in tree.children(parent) if c.end is not None]
        assert chosen.end == max(s.end for s in siblings)


def test_run_metrics_accompany_the_trace(scenario):
    totals = scenario.metrics
    assert totals["runtime.asks"] > 0
    assert totals["net.messages"] > 0
    assert totals["runtime.activations_created"] > 0
