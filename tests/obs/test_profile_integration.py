"""Integration: profiled fig6-style run, and SLO alerts under chaos.

Two acceptance criteria live here:

- the continuous profiler attributes ≥ 95% of the kernel's virtual-CPU
  ledger on the paper's fig6-style workload (exact attribution — in
  practice it matches the ledger to float precision);
- at least one SLO alert fires *and clears* under injected faults: a
  silently-crashed silo stops heartbeating, the ``heartbeat-misses`` rule
  fires while membership suspects it, and clears once the failure detector
  declares it dead and repairs the cluster view.
"""

import pytest

from repro.bench.profilebench import COVERAGE_FLOOR, check_invariants, run_scenario
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.obs.health import HealthMonitor, default_slo_rules
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.storage.system_store import SystemStore


@pytest.fixture(scope="module")
def scenario():
    return run_scenario(sensors=6, duration=3.0)


def test_attribution_covers_kernel_cpu_ledger(scenario):
    report = scenario.report
    assert report.turns > 0
    assert report.total_cpu_seconds > 0
    assert COVERAGE_FLOOR <= report.coverage <= 1.0 + 1e-6
    # Exact attribution: the method rows reproduce the kernel's own ledger.
    assert report.attributed_cpu_seconds == pytest.approx(
        report.total_cpu_seconds
    )


def test_workload_actors_appear_in_method_rows(scenario):
    labels = [row.label for row in scenario.report.rows]
    assert any("SensorChannel" in label for label in labels)
    # Telemetry is self-hosted: its actors are profiled like any tenant.
    assert any(label.startswith("SiloMonitor.") for label in labels)


def test_queue_and_storage_waits_are_attributed(scenario):
    rows = scenario.report.rows
    assert sum(row.queue_wait for row in rows) >= 0.0
    assert all(row.calls > 0 for row in rows)


def test_health_and_telemetry_ran_alongside(scenario):
    assert scenario.monitor.evaluations > 0
    assert scenario.pump.ticks > 0
    assert scenario.aggregator_series  # cluster history exists
    for points in scenario.monitor_history.values():
        assert points  # per-silo history answers range queries


def test_smoke_invariants_hold(scenario):
    assert check_invariants(scenario) == []


def test_slo_alert_fires_and_clears_under_injected_silo_crash():
    """Chaos-injected fault → typed alert lifecycle, end to end.

    Timeline (virtual seconds, lease 2s, grace 2s, detector every 0.5s):
    t=1   silo-2 crashes silently (heartbeat stops, membership unaware)
    t≤3   lease lapses → status "suspected" → heartbeat-misses FIRES
    t≈5   detector sees grace expired → silo declared dead and evicted
          → suspected count drops to 0 → heartbeat-misses CLEARS
    """
    scheduler = Scheduler()
    runtime = AodbRuntime(
        scheduler,
        config=RuntimeConfig(
            enable_failure_detection=True,
            failure_detection_interval=0.5,
            suspicion_grace=2.0,
        ),
        network=Network(scheduler, lan=ConstantLatency(0.0)),
        system_store=SystemStore(scheduler, lease_seconds=2.0),
    )
    runtime.add_silo("s1", cores=2)
    runtime.add_silo("s2", cores=2)
    runtime.start()
    monitor = HealthMonitor(runtime.metrics, default_slo_rules())
    monitor.attach(scheduler, interval=0.25)

    async def run():
        await scheduler.sleep(1.0)
        assert monitor.active() == []  # heartbeats flowing, all healthy
        runtime.crash_silo("s2", detected=False)
        await scheduler.sleep(3.0)  # lease lapses within 2s of the crash
        assert "heartbeat-misses" in monitor.active()
        await scheduler.sleep(4.0)  # detector evicts after the grace period
        assert monitor.active() == []

    scheduler.run_until_complete(run())
    monitor.detach()
    transitions = [
        (alert.rule, alert.state)
        for alert in monitor.alerts
        if alert.rule == "heartbeat-misses"
    ]
    assert transitions == [
        ("heartbeat-misses", "firing"),
        ("heartbeat-misses", "cleared"),
    ]
    firing = next(a for a in monitor.alerts if a.state == "firing")
    assert firing.severity == "critical"
    assert firing.value >= 1.0
    # The detector really did evict the crashed silo.
    assert [silo.silo_id for silo in runtime.silos()] == ["s1"]
    assert runtime.system_store.status_of("s2") == "dead"
