"""Unit tests for the continuous profiler: records, caps, coverage, report."""

import pytest

from repro.kernel.scheduler import Scheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    ProfileRecord,
    Profiler,
    build_report,
    mailbox_backlogs,
)
from repro.runtime.key import ActorKey


def test_record_accumulates_and_serializes():
    record = ProfileRecord("Sensor.ingest")
    record.calls += 2
    record.cpu_service += 0.5
    record.cpu_wait += 0.1
    record.queue_wait += 0.2
    record.storage_wait += 0.05
    assert record.busy == pytest.approx(0.85)
    view = record.as_dict()
    assert view["label"] == "Sensor.ingest"
    assert view["calls"] == 2
    assert view["cpu_service"] == 0.5


def test_method_records_are_get_or_create_and_sorted():
    profiler = Profiler(enabled=True)
    hot = profiler.method_record("Sensor", "ingest")
    cold = profiler.method_record("Sensor", "latest")
    assert profiler.method_record("Sensor", "ingest") is hot
    hot.cpu_service += 1.0
    cold.cpu_service += 0.1
    rows = profiler.method_rows()
    assert [row.label for row in rows] == ["Sensor.ingest", "Sensor.latest"]


def test_activation_records_keyed_by_actor_key():
    profiler = Profiler(enabled=True)
    key = ActorKey("Sensor", "org-0/s-1")
    record = profiler.activation_record(key)
    assert profiler.activation_record(ActorKey("Sensor", "org-0/s-1")) is record
    assert record.label == "Sensor/org-0/s-1"


def test_method_cap_collapses_into_other_bucket():
    profiler = Profiler(enabled=True, max_methods=2)
    profiler.method_record("A", "m1").cpu_service += 1.0
    profiler.method_record("A", "m2").cpu_service += 1.0
    overflow = profiler.method_record("A", "m3")
    overflow.cpu_service += 5.0
    assert overflow.label == "(other methods)"
    assert profiler.method_overflow == 1
    # Attribution stays complete: the sink's CPU still counts.
    assert profiler.attributed_cpu() == pytest.approx(7.0)
    assert any(r.label == "(other methods)" for r in profiler.method_rows())


def test_activation_cap_collapses_into_other_bucket():
    profiler = Profiler(enabled=True, max_activations=1)
    profiler.activation_record(ActorKey("S", "a")).cpu_service += 1.0
    sink = profiler.activation_record(ActorKey("S", "b"))
    sink.calls += 1
    assert sink.label == "(other activations)"
    assert profiler.activation_overflow == 1
    labels = [r.label for r in profiler.hot_activations()]
    assert "(other activations)" in labels


def test_hot_activations_returns_top_by_cpu():
    profiler = Profiler(enabled=True)
    for index in range(5):
        record = profiler.activation_record(ActorKey("S", f"a{index}"))
        record.cpu_service += float(index)
    top = profiler.hot_activations(top=2)
    assert [r.label for r in top] == ["S/a4", "S/a3"]


def test_coverage_against_kernel_ledger():
    profiler = Profiler(enabled=True)
    assert profiler.coverage(0.0) == 1.0  # nothing ran, nothing missing
    profiler.method_record("S", "m").cpu_service += 1.0
    assert profiler.coverage(0.0) == float("inf")  # silo churn case
    assert profiler.coverage(2.0) == pytest.approx(0.5)
    assert profiler.coverage(1.0) == pytest.approx(1.0)


def test_clear_resets_everything():
    profiler = Profiler(enabled=True)
    profiler.turns = 7
    profiler.method_record("S", "m").cpu_service += 1.0
    profiler.activation_record(ActorKey("S", "a")).calls += 1
    profiler.clear()
    assert profiler.turns == 0
    assert profiler.attributed_cpu() == 0.0
    assert profiler.method_rows() == []
    assert profiler.hot_activations() == []


def test_register_metrics_exports_probes():
    profiler = Profiler(enabled=True)
    registry = MetricsRegistry()
    profiler.register_metrics(registry)
    profiler.turns = 3
    profiler.method_record("S", "m").cpu_service += 0.25
    snapshot = registry.snapshot()
    assert snapshot["profile.turns"] == 3
    assert snapshot["profile.attributed_cpu_seconds"] == pytest.approx(0.25)
    assert snapshot["profile.method_overflow"] == 0


class _FakeActivation:
    def __init__(self, key, depth):
        self.key = key
        self.mailbox = [None] * depth


class _FakeSilo:
    def __init__(self, silo_id, depths):
        self.silo_id = silo_id
        self._activations = [
            _FakeActivation(ActorKey("S", f"a{i}"), depth)
            for i, depth in enumerate(depths)
        ]

    def activations(self):
        return list(self._activations)


def test_mailbox_backlogs_sorted_and_filtered():
    silos = [_FakeSilo("s1", [0, 3]), _FakeSilo("s2", [5, 1])]
    rows = mailbox_backlogs(silos, top=2)
    assert rows == [("S/a0", 5, "s2"), ("S/a1", 3, "s1")]
    # minimum filters shallow mailboxes entirely.
    assert mailbox_backlogs(silos, top=10, minimum=6) == []


def test_build_report_sums_kernel_ledger():
    scheduler = Scheduler()

    class _CpuSilo(_FakeSilo):
        def __init__(self, silo_id, busy):
            super().__init__(silo_id, [])
            from repro.kernel.resources import CpuResource

            self.cpu = CpuResource(scheduler, cores=1)
            self.cpu.busy_seconds = busy

    profiler = Profiler(enabled=True)
    profiler.method_record("S", "m").cpu_service += 1.5
    profiler.turns = 4
    report = build_report(profiler, [_CpuSilo("s1", 1.0), _CpuSilo("s2", 0.5)])
    assert report.total_cpu_seconds == pytest.approx(1.5)
    assert report.attributed_cpu_seconds == pytest.approx(1.5)
    assert report.coverage == pytest.approx(1.0)
    assert report.turns == 4
    assert report.rows[0].label == "S.m"
