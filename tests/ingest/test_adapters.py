"""Unit tests for device payload adapters."""

import pytest

from repro.ingest import (
    AdapterError,
    BinaryFrameAdapter,
    CsvLineAdapter,
    JsonDocumentAdapter,
    default_registry,
)


def test_json_adapter_parses_document():
    adapter = JsonDocumentAdapter()
    payload = {
        "channels": {
            "org-0/s-0/c-0": [{"t": 1.0, "v": 2.5}, {"t": 1.1, "v": 2.6}],
            "org-0/s-0/c-1": [{"t": 1.0, "v": 9.0}],
        }
    }
    batch = adapter.parse(payload)
    assert batch["org-0/s-0/c-0"] == [(1.0, 2.5), (1.1, 2.6)]
    assert batch["org-0/s-0/c-1"] == [(1.0, 9.0)]


def test_json_adapter_rejects_bad_shapes():
    adapter = JsonDocumentAdapter()
    with pytest.raises(AdapterError):
        adapter.parse([1, 2, 3])
    with pytest.raises(AdapterError):
        adapter.parse({"channels": "not-a-mapping"})
    with pytest.raises(AdapterError):
        adapter.parse({"channels": {"c": [{"t": "x", "v": 1}]}})
    with pytest.raises(AdapterError):
        adapter.parse({"channels": {"c": [{"value": 1}]}})


def test_csv_adapter_parses_lines_with_comments():
    adapter = CsvLineAdapter()
    text = """# logger upload
    org-0/s-0/c-0, 1.0, 2.5
    org-0/s-0/c-0, 1.1, 2.6

    org-0/s-0/c-1, 1.0, 9.0
    """
    batch = adapter.parse(text)
    assert batch["org-0/s-0/c-0"] == [(1.0, 2.5), (1.1, 2.6)]
    assert batch["org-0/s-0/c-1"] == [(1.0, 9.0)]


def test_csv_adapter_accepts_bytes():
    batch = CsvLineAdapter().parse(b"c0,1.0,2.0")
    assert batch == {"c0": [(1.0, 2.0)]}


def test_csv_adapter_rejects_malformed():
    adapter = CsvLineAdapter()
    with pytest.raises(AdapterError):
        adapter.parse("only,two")
    with pytest.raises(AdapterError):
        adapter.parse("c0,abc,1.0")
    with pytest.raises(AdapterError):
        adapter.parse(12345)


def test_binary_adapter_round_trip():
    table = ["c0", "c1"]
    batch = {"c0": [(1.0, 2.5), (1.1, 2.6)], "c1": [(1.0, 9.0)]}
    frame = BinaryFrameAdapter.encode(table, batch)
    parsed = BinaryFrameAdapter(table).parse(frame)
    assert parsed == batch


def test_binary_adapter_rejects_corruption():
    table = ["c0"]
    adapter = BinaryFrameAdapter(table)
    good = BinaryFrameAdapter.encode(table, {"c0": [(1.0, 2.0)]})
    with pytest.raises(AdapterError):
        adapter.parse(good[:-1])  # truncated
    with pytest.raises(AdapterError):
        adapter.parse(b"\x00")  # shorter than header
    with pytest.raises(AdapterError):
        adapter.parse("not bytes")
    # Unknown channel index.
    other = BinaryFrameAdapter.encode(["c0", "c1"], {"c1": [(1.0, 2.0)]})
    with pytest.raises(AdapterError):
        adapter.parse(other)
    # Bad version.
    with pytest.raises(AdapterError):
        adapter.parse(b"\x00\x63\x00\x00")


def test_binary_adapter_needs_channel_table():
    with pytest.raises(ValueError):
        BinaryFrameAdapter([])


def test_registry_dispatches_and_rejects_unknown():
    registry = default_registry(binary_channel_table=["c0"])
    assert registry.formats() == ["binary", "csv", "json"]
    assert registry.parse("csv", "c0,1,2") == {"c0": [(1.0, 2.0)]}
    with pytest.raises(AdapterError):
        registry.parse("xml", "<reading/>")


def test_all_dialects_normalize_identically():
    table = ["c0", "c1"]
    registry = default_registry(binary_channel_table=table)
    batch = {"c0": [(1.0, 2.5)], "c1": [(1.0, 9.0)]}
    as_json = {
        "channels": {
            cid: [{"t": t, "v": v} for t, v in points]
            for cid, points in batch.items()
        }
    }
    as_csv = "\n".join(
        f"{cid},{t},{v}" for cid, points in batch.items() for t, v in points
    )
    as_binary = BinaryFrameAdapter.encode(table, batch)
    assert registry.parse("json", as_json) == batch
    assert registry.parse("csv", as_csv) == batch
    assert registry.parse("binary", as_binary) == batch
