"""Tests for the ingestion gateway (queueing, overflow, dispatch)."""

import pytest

from repro.aodb import AodbDatabase
from repro.ingest import GatewayOverloadedError, IngestGateway, default_registry
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.shm import ShmPlatform, channel_id_for, sensor_id_for


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def platform(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.0005))
    )
    runtime.add_silo("silo-1", cores=4)
    return ShmPlatform(AodbDatabase(runtime))


def json_upload(sensor_id, start=0.0):
    return {
        "channels": {
            channel_id_for(sensor_id, c): [
                {"t": start + i * 0.1, "v": float(c + i)} for i in range(10)
            ]
            for c in (0, 1)
        }
    }


def test_gateway_normalizes_and_dispatches(sched, platform):
    gateway = IngestGateway(platform, default_registry())
    gateway.start()

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        gateway.submit(sensor_id, "json", json_upload(sensor_id))
        gateway.submit(
            sensor_id,
            "csv",
            f"{channel_id_for(sensor_id, 0)},5.0,42.0",
        )
        await sched.sleep(1)
        return await platform.raw_range(channel_id_for(sensor_id, 0), 0.0, 10.0)

    raw = sched.run_until_complete(main())
    assert len(raw) == 11  # 10 json points + 1 csv point
    assert gateway.stats.accepted == 2
    assert gateway.stats.dispatched == 2
    assert gateway.stats.formats_seen == {"json": 1, "csv": 1}


def test_gateway_rejects_bad_payload_synchronously(sched, platform):
    from repro.ingest import AdapterError

    gateway = IngestGateway(platform, default_registry())
    with pytest.raises(AdapterError):
        gateway.submit("s", "json", {"nope": 1})
    assert gateway.stats.parse_errors == 1
    assert gateway.stats.accepted == 0


def test_gateway_reject_overflow_policy(sched, platform):
    gateway = IngestGateway(
        platform, default_registry(), queue_capacity=2, overflow="reject"
    )
    # No dispatchers running: the queue can only fill.

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        gateway.submit(sensor_id, "json", json_upload(sensor_id))
        gateway.submit(sensor_id, "json", json_upload(sensor_id))
        with pytest.raises(GatewayOverloadedError):
            gateway.submit(sensor_id, "json", json_upload(sensor_id))

    sched.run_until_complete(main())
    assert gateway.stats.rejected == 1
    assert gateway.queue_depth == 2


def test_gateway_drop_oldest_overflow_policy(sched, platform):
    gateway = IngestGateway(
        platform, default_registry(), queue_capacity=2, overflow="drop_oldest"
    )

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        for start in (0.0, 1.0, 2.0):
            gateway.submit(sensor_id, "json", json_upload(sensor_id, start))
        # Now drain: start dispatchers late.
        gateway.start()
        await sched.sleep(1)
        return await platform.raw_range(channel_id_for(sensor_id, 0), 0.0, 10.0)

    raw = sched.run_until_complete(main())
    assert gateway.stats.dropped == 1
    # The oldest upload (start=0.0) was evicted; 1.0 and 2.0 survived.
    timestamps = [t for t, _ in raw]
    assert min(timestamps) == pytest.approx(1.0)
    assert len(raw) == 20


def test_gateway_backpressure_absorbs_burst(sched, platform):
    """A burst far above actor-tier throughput drains smoothly."""
    gateway = IngestGateway(
        platform, default_registry(), queue_capacity=500, dispatchers=4
    )
    gateway.start()

    async def main():
        await platform.provision(total_sensors=10)
        # 100 uploads arrive in one instant.
        for wave in range(10):
            for index in range(10):
                sensor_id = sensor_id_for("org-0", index)
                gateway.submit(sensor_id, "json", json_upload(sensor_id, float(wave)))
        depth_at_burst = gateway.queue_depth
        await gateway.stop(drain=True)
        return depth_at_burst

    depth = sched.run_until_complete(main())
    assert depth > 50  # the queue really buffered the burst
    assert gateway.stats.dispatched == 100
    assert gateway.queue_depth == 0


def test_gateway_bad_sensor_id_counted_not_fatal(sched, platform):
    gateway = IngestGateway(platform, default_registry())
    gateway.start()

    async def main():
        await platform.provision(total_sensors=1)
        gateway.submit("org-0/s-99", "csv", "org-0/s-99/c-0,1.0,2.0")
        sensor_id = sensor_id_for("org-0", 0)
        gateway.submit(sensor_id, "json", json_upload(sensor_id))
        await sched.sleep(1)
        return await platform.raw_range(channel_id_for(sensor_id, 0), 0.0, 10.0)

    raw = sched.run_until_complete(main())
    assert len(raw) == 10  # the good upload landed
    assert gateway.stats.parse_errors == 1


def test_gateway_invalid_overflow_rejected(platform):
    with pytest.raises(ValueError):
        IngestGateway(platform, default_registry(), overflow="explode")
