"""Gateway dispatch coalescing: merge consecutive same-sensor envelopes.

The fast path lets a dispatcher fold up to ``coalesce_max - 1``
immediately-queued envelopes *for the same sensor* into one ingest call.
Only consecutive queue heads merge, so inter-sensor dispatch order and
intra-sensor reading order both stay exactly FIFO.
"""

import pytest

from repro.aodb import AodbDatabase
from repro.ingest import IngestGateway, default_registry
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.shm import ShmPlatform, channel_id_for, sensor_id_for


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def platform(sched):
    config = RuntimeConfig(default_method_cost=0.0, activation_cost=0.0)
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.0005))
    )
    runtime.add_silo("silo-1", cores=4)
    return ShmPlatform(AodbDatabase(runtime))


def upload(sensor_id, start):
    return {
        "channels": {
            channel_id_for(sensor_id, 0): [{"t": start, "v": start}],
        }
    }


def test_same_sensor_backlog_coalesces(sched, platform):
    gateway = IngestGateway(
        platform, default_registry(), dispatchers=1, coalesce_max=8
    )

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        for i in range(5):
            gateway.submit(sensor_id, "json", upload(sensor_id, float(i)))
        gateway.start()  # backlog of 5 greets the single dispatcher
        await sched.sleep(1)
        return await platform.raw_range(channel_id_for(sensor_id, 0), 0.0, 10.0)

    points = sched.run_until_complete(main())
    # Every reading arrived, in upload order, via one coalesced dispatch.
    assert [t for t, _v in points] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert gateway.stats.dispatched == 5
    assert gateway.stats.coalesced == 4


def test_coalesce_max_bounds_the_merge(sched, platform):
    gateway = IngestGateway(
        platform, default_registry(), dispatchers=1, coalesce_max=2
    )

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        for i in range(4):
            gateway.submit(sensor_id, "json", upload(sensor_id, float(i)))
        gateway.start()
        await sched.sleep(1)

    sched.run_until_complete(main())
    # Pairs of envelopes merged: 2 carrier dispatches, 2 merged riders.
    assert gateway.stats.dispatched == 4
    assert gateway.stats.coalesced == 2


def test_interleaved_sensors_do_not_merge_across(sched, platform):
    gateway = IngestGateway(
        platform, default_registry(), dispatchers=1, coalesce_max=8
    )

    async def main():
        await platform.provision(total_sensors=2)
        a = sensor_id_for("org-0", 0)
        b = sensor_id_for("org-0", 1)
        # a, b, a, b: no two consecutive heads share a sensor.
        for i, sensor in enumerate((a, b, a, b)):
            gateway.submit(sensor, "json", upload(sensor, float(i)))
        gateway.start()
        await sched.sleep(1)
        return (
            await platform.raw_range(channel_id_for(a, 0), 0.0, 10.0),
            await platform.raw_range(channel_id_for(b, 0), 0.0, 10.0),
        )

    points_a, points_b = sched.run_until_complete(main())
    assert [t for t, _v in points_a] == [0.0, 2.0]
    assert [t for t, _v in points_b] == [1.0, 3.0]
    assert gateway.stats.coalesced == 0


def test_coalescing_disabled_by_default(sched, platform):
    gateway = IngestGateway(platform, default_registry(), dispatchers=1)
    assert gateway.coalesce_max == 1

    async def main():
        await platform.provision(total_sensors=1)
        sensor_id = sensor_id_for("org-0", 0)
        for i in range(3):
            gateway.submit(sensor_id, "json", upload(sensor_id, float(i)))
        gateway.start()
        await sched.sleep(1)

    sched.run_until_complete(main())
    assert gateway.stats.dispatched == 3
    assert gateway.stats.coalesced == 0


def test_coalesce_max_validation(platform):
    with pytest.raises(ValueError):
        IngestGateway(platform, default_registry(), coalesce_max=0)
