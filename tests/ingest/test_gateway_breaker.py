"""Gateway circuit breaker: load shedding and bounded queueing under throttle."""

import pytest

from repro.errors import ThrottledError
from repro.ingest import GatewayOverloadedError, IngestGateway, default_registry
from repro.kernel import Scheduler
from repro.runtime import CircuitBreaker
from repro.shm import channel_id_for


class FakeRuntime:
    def __init__(self, scheduler):
        self.scheduler = scheduler


class FlakyBackend:
    """Duck-typed platform: throttles every ingest until ``heal_at``."""

    def __init__(self, scheduler, heal_at):
        self.runtime = FakeRuntime(scheduler)
        self.heal_at = heal_at
        self.served = []

    async def ingest(self, sensor_id, batch):
        if self.runtime.scheduler.now < self.heal_at:
            raise ThrottledError("backend overloaded", retry_after=0.1)
        self.served.append(sensor_id)


def upload(sensor_id):
    return {
        "channels": {
            channel_id_for(sensor_id, 0): [{"t": 0.0, "v": 1.0}],
        }
    }


def test_breaker_trips_requeues_and_recovers():
    sched = Scheduler()
    backend = FlakyBackend(sched, heal_at=2.0)
    breaker = CircuitBreaker(sched, failure_threshold=3, reset_timeout=1.0)
    gateway = IngestGateway(
        backend, default_registry(), dispatchers=2, breaker=breaker
    )
    gateway.start()

    async def main():
        for i in range(6):
            gateway.submit(f"s-{i}", "json", upload(f"s-{i}"))
        await sched.sleep(10.0)

    sched.run_until_complete(main())
    # Every envelope survived the throttled phase via requeueing and was
    # dispatched once the backend healed and the breaker closed.
    assert sorted(backend.served) == [f"s-{i}" for i in range(6)]
    assert gateway.stats.dispatched == 6
    assert gateway.stats.throttled >= 3
    assert gateway.stats.redispatched >= 3
    assert gateway.stats.dropped == 0
    assert breaker.opens >= 1
    assert breaker.state == CircuitBreaker.CLOSED


def test_open_breaker_sheds_past_watermark():
    sched = Scheduler()
    backend = FlakyBackend(sched, heal_at=100.0)
    breaker = CircuitBreaker(sched, failure_threshold=1, reset_timeout=5.0)
    gateway = IngestGateway(
        backend,
        default_registry(),
        queue_capacity=4,
        shed_watermark=0.5,
        breaker=breaker,
    )
    # No dispatchers: queue depth is fully under the test's control.
    breaker.record_failure()  # trip it open
    assert not breaker.allow()

    gateway.submit("s-0", "json", upload("s-0"))
    gateway.submit("s-1", "json", upload("s-1"))
    # Queue is now at the watermark (2 of 4): new uploads are shed.
    with pytest.raises(GatewayOverloadedError):
        gateway.submit("s-2", "json", upload("s-2"))
    assert gateway.stats.shed == 1
    assert gateway.stats.accepted == 2


def test_closed_breaker_never_sheds():
    sched = Scheduler()
    backend = FlakyBackend(sched, heal_at=0.0)
    breaker = CircuitBreaker(sched, failure_threshold=1, reset_timeout=5.0)
    gateway = IngestGateway(
        backend,
        default_registry(),
        queue_capacity=4,
        shed_watermark=0.0,  # most aggressive watermark
        breaker=breaker,
    )
    for i in range(4):
        gateway.submit(f"s-{i}", "json", upload(f"s-{i}"))
    assert gateway.stats.shed == 0
    assert gateway.stats.accepted == 4


def test_shed_watermark_validated():
    sched = Scheduler()
    backend = FlakyBackend(sched, heal_at=0.0)
    with pytest.raises(ValueError):
        IngestGateway(backend, default_registry(), shed_watermark=1.5)
