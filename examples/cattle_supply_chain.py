"""Beef cattle tracking & tracing, farm to consumer (case study 2).

Walks the paper's Figure 3 model end to end:

1. farmers with geo-fenced pastures and collar-equipped cows;
2. an atomic cow sale between farm units (the §4.4 transaction principle);
3. slaughter, distribution via Delivery actors, retail transformation;
4. a consumer trace assembled into a provenance graph (networkx);
5. the same chain through model B (versioned non-actor objects, Figure 5)
   with a message-count comparison — the §4.3 trade-off, live.

Run: ``python examples/cattle_supply_chain.py``
"""

from repro.aodb import AodbDatabase
from repro.cattle import (
    CattlePlatform,
    build_product_trace_graph,
    rectangle_fence,
    summarize_trace,
)
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig


async def main(scheduler, platform):
    runtime = platform.runtime

    # -- farms, cows, collars ---------------------------------------------------
    await platform.register_farmer("farm-jensen", "Jensen Farm", "urn:gs1:gln:loc:0000001")
    await platform.register_farmer("farm-olsen", "Olsen Farm", "urn:gs1:gln:loc:0000002")
    for index in range(4):
        await platform.register_cow(f"cow-{index}", "farm-jensen", born_at=0.0)

    farmer = runtime.ref("Farmer", "farm-jensen")
    pasture = rectangle_fence("north-pasture", 55.30, 11.00, 55.40, 11.20)
    await farmer.define_fence(pasture.as_dict())
    for index in range(4):
        await farmer.assign_fence(f"cow-{index}", "north-pasture")

    # Collar readings stream in; cow-3 wanders out of the pasture.
    for step in range(10):
        t = float(step * 60)
        for index in range(4):
            drift = 0.02 * step if index == 3 else 0.001 * step
            await runtime.ref("Cow", f"cow-{index}").record_reading(
                {
                    "timestamp": t,
                    "latitude": 55.35 + drift,
                    "longitude": 11.10,
                    "activity": 0.4,
                    "temperature": 38.6,
                }
            )
    await scheduler.sleep(1)
    breaches = await farmer.breaches()
    print(f"geo-fence breaches reported to the farmer: {len(breaches)} "
          f"(cow {breaches[0]['cow_id']})" if breaches else "no breaches")
    herd_locations = await farmer.herd_locations()
    print(f"herd tracking: {len(herd_locations)} cows, "
          f"cow-0 at ({herd_locations['cow-0']['latitude']:.3f}, "
          f"{herd_locations['cow-0']['longitude']:.3f})")

    # -- an atomic sale between farm units (transaction, §4.4) -------------------
    sold = await platform.sell_cow_transactional("cow-1", "farm-jensen", "farm-olsen", 700.0)
    print(f"cow-1 sold to Olsen Farm atomically: {sold}; "
          f"Jensen now owns {await platform.cows_of('farm-jensen')}")

    # -- slaughter, distribution, retail (model A: everything an actor) ----------
    await platform.register_slaughterhouse("sh-dc", "Danish Crown", "urn:gs1:gln:loc:0000009")
    await platform.register_distributor("dist-nl", "Nordic Logistics")
    await platform.register_retailer("ret-sm", "SuperMart")

    sh = runtime.ref("Slaughterhouse", "sh-dc")
    print("slaughterhouse provenance check:",
          (await sh.incoming_cow_info("cow-0"))["cow"]["owner_id"])
    cut_ids = await sh.slaughter_cow("cow-0", timestamp=1000.0, cuts=4)

    distributor = runtime.ref("Distributor", "dist-nl")
    delivery_id = await distributor.create_delivery(cut_ids, "sh-dc", "ret-sm", "truck-7")
    delivery = runtime.ref("Delivery", delivery_id)
    await delivery.start(timestamp=1010.0)
    print(f"delivery {delivery_id} in transit with {len(cut_ids)} cuts; "
          f"in-transit cuts per index: {await platform.cuts_held_by('dist-nl')}")
    await delivery.complete(timestamp=1050.0)
    await scheduler.sleep(1)

    retailer = runtime.ref("Retailer", "ret-sm")
    product_id = await retailer.create_product(cut_ids[:2], timestamp=1100.0,
                                               product_kind="rib-eye twin pack")
    await retailer.sell_product(product_id, timestamp=1200.0)

    # -- the consumer trace -------------------------------------------------------
    graph = await build_product_trace_graph(platform.db, product_id)
    summary = summarize_trace(graph, product_id)
    print(f"consumer trace of {product_id}:")
    print(f"  origin farms: {summary['origin_farms']}")
    print(f"  entities in provenance: {summary['entities']}")

    # -- the same chain through model B, counting messages (§4.3) ------------------
    await runtime.ref("SlaughterhouseB", "shb").setup("Crown B")
    await runtime.ref("DistributorB", "distb").setup("Logistics B")
    await runtime.ref("RetailerB", "retb").setup("Mart B")
    before = runtime.stats.asks + runtime.stats.tells
    shb = runtime.ref("SlaughterhouseB", "shb")
    b_cuts = await shb.slaughter_cow("cow-2", timestamp=2000.0, cuts=4)
    await shb.ship_cuts(b_cuts, "distb", 2010.0)
    await runtime.ref("DistributorB", "distb").deliver_cuts(b_cuts, "retb", 2050.0)
    retb = runtime.ref("RetailerB", "retb")
    b_product = await retb.create_product(b_cuts[:2], timestamp=2100.0)
    b_trace = await retb.trace_product(b_product)
    model_b_messages = runtime.stats.asks + runtime.stats.tells - before
    print(f"model B ran the same chain in {model_b_messages} messages; "
          f"trace chains: {[link['holder'] for link in b_trace['cuts'][0]['chain']]}")


if __name__ == "__main__":
    scheduler = Scheduler()
    config = RuntimeConfig(default_method_cost=0.0001, activation_cost=0.0002)
    runtime = AodbRuntime(
        scheduler, config=config, network=Network(scheduler, lan=ConstantLatency(0.0005))
    )
    runtime.add_silo("silo-1", cores=4)
    runtime.add_silo("silo-2", cores=4)
    platform = CattlePlatform(AodbDatabase(runtime))
    scheduler.run_until_complete(main(scheduler, platform))
    print("supply chain example complete")
