"""Quickstart: define actors, run them on an actor-oriented database.

Demonstrates the core public API in ~60 lines:

- a deterministic scheduler (virtual time),
- a runtime with one silo,
- a durable actor with indexed state,
- references, asks/tells, queries and deactivation.

Run: ``python examples/quickstart.py``
"""

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.runtime import Actor, AodbRuntime, actor_method


class Device(Actor):
    """A tiny IoT device actor: stores readings, indexed by site."""

    durable = True
    indexed_attributes = ("site",)

    async def install(self, site):
        self.set_indexed("site", site)
        self.state["readings"] = []
        return f"{self.actor_id} installed at {site}"

    async def record(self, value):
        self.state["readings"].append(value)
        self.mark_dirty()
        return len(self.state["readings"])

    @actor_method(read_only=True)
    async def mean(self):
        readings = self.state.get("readings", [])
        return sum(readings) / len(readings) if readings else None


async def main(scheduler, db):
    # Virtual actors activate on first use -- no explicit creation.
    for index in range(6):
        device = db.ref("Device", f"dev-{index}")
        await device.install("bridge-north" if index % 2 else "bridge-south")
        for reading in range(5):
            await device.record(reading * (index + 1))

    # A declarative query over the indexed attribute, fanning out a method.
    rows = await (
        db.query("Device").where(site="bridge-north").call("mean").run()
    )
    print("mean reading per north-side device:")
    for row in rows:
        print(f"  {row.actor_id}: {row.value:.1f}")

    # Durable state survives deactivation (persisted to grain storage).
    await db.runtime.deactivate("Device", "dev-1")
    revived = await db.ref("Device", "dev-1").mean()
    print(f"dev-1 after deactivate/reactivate cycle: mean={revived:.1f}")

    print(f"cluster: {db.runtime.describe_cluster()}")


if __name__ == "__main__":
    scheduler = Scheduler()
    runtime = AodbRuntime(scheduler)
    runtime.add_silo("silo-1", cores=2)
    db = AodbDatabase(runtime)
    db.register_actor(Device)
    scheduler.run_until_complete(main(scheduler, db))
    print("quickstart complete")
