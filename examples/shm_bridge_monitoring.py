"""Structural health monitoring of a bridge (the paper's case study 1).

A Great-Belt-style scenario end to end:

1. provision an organization with sensors, channels, virtual channels,
   aggregators and alert rules;
2. stream a day of wind/extension readings (compressed into virtual time);
3. trip a threshold alert and read it from the engineer's inbox;
4. run the three online queries of the paper's evaluation (live data, raw
   time ranges, statistical aggregates);
5. shut the silo down and show that all windows reached grain storage
   (the paper's durability configuration).

Run: ``python examples/shm_bridge_monitoring.py``
"""

import math

from repro.aodb import AodbDatabase
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.shm import SensorType, ShmPlatform, channel_id_for, sensor_id_for


def wind_gust(t):
    """Synthetic wind speed: a breeze with one storm gust."""
    base = 12.0 + 4.0 * math.sin(t / 600.0)
    gust = 30.0 if 1800 <= t < 1860 else 0.0
    return base + gust


async def main(scheduler, platform):
    # -- provision the tenant ------------------------------------------------
    storm_rule = {
        "rule_id": "storm-warning",
        "high": 25.0,
        "low": None,
        "channel_id": None,
        "sensor_type": SensorType.WIND_SPEED.value,
        "cooldown_seconds": 600.0,
        "message": "wind speed exceeded 25 m/s",
    }
    await platform.create_organization("org-0", "Great Belt Bridge Authority")
    org = platform.runtime.ref("Organization", "org-0")
    await org.add_project("org-0/project-0", "East Bridge", "suspension bridge")
    await org.add_user("engineer-1", "Karin", role="engineer")

    for index, sensor_type in enumerate(
        [SensorType.WIND_SPEED, SensorType.EXTENSION, SensorType.EXTENSION]
    ):
        await platform.add_sensor(
            "org-0",
            "org-0/project-0",
            sensor_id_for("org-0", index),
            sensor_type=sensor_type,
            with_virtual_channel=(index == 1),
            alert_rules=[storm_rule],
        )
    print("provisioned:", await platform.organization_summary("org-0"))

    # -- stream an hour of readings at 1 Hz per channel ----------------------
    for t in range(0, 3600, 10):
        for index in range(3):
            sensor_id = sensor_id_for("org-0", index)
            batches = {}
            for channel in (0, 1):
                channel_id = channel_id_for(sensor_id, channel)
                if index == 0:
                    values = [wind_gust(t + i) for i in range(10)]
                else:
                    values = [0.5 * math.sin((t + i) / 900.0) for i in range(10)]
                batches[channel_id] = [
                    (float(t + i), value) for i, value in enumerate(values)
                ]
            await platform.ingest(sensor_id, batches)
        await scheduler.sleep(10)

    # -- alerts ---------------------------------------------------------------
    alerts = await platform.alerts("org-0")
    inbox = await org.inbox("engineer-1")
    print(f"alerts recorded: {len(alerts)} (engineer inbox: {len(inbox)})")
    for alert in alerts:
        print(
            f"  [{alert['timestamp']:7.0f}s] {alert['channel_id']}: "
            f"{alert['value']:.1f} -- {alert['message']}"
        )

    # -- the three online query types of the evaluation ------------------------
    live = await platform.live_data("org-0", user_id="engineer-1")
    wind_channel = channel_id_for(sensor_id_for("org-0", 0), 0)
    print(f"live data covers {len(live)} channels; wind now: "
          f"{live[wind_channel][1]:.1f} m/s")

    # Recent raw data is served from the channel actor's in-memory window...
    raw = await platform.raw_range(wind_channel, 3500.0, 3560.0)
    print(f"raw range 3500-3560s (live window): {len(raw)} points, "
          f"max {max(v for _, v in raw):.1f} m/s")
    # ...while older points were evicted to the archive log (the boundary
    # to the historical/analytical store in the paper's architecture).
    storm = platform.archive.read_range(wind_channel, 1800.0, 1860.0)
    print(f"raw range 1800-1860s (archive): {len(storm)} points, "
          f"max {max(r.payload for r in storm):.1f} m/s")

    series = await platform.aggregates(wind_channel, "hour", 0.0, 3600.0)
    for bucket, stats in series:
        print(
            f"hourly aggregate [{bucket}]: mean={stats['mean']:.1f} "
            f"max={stats['max']:.1f} n={stats['count']}"
        )

    change = await platform.accumulated_change(
        channel_id_for(sensor_id_for("org-0", 1), 0)
    )
    print(f"extension accumulated change: net={change['net']:.3f} "
          f"total={change['total']:.3f}")

    # -- durability on shutdown (the paper's benchmark configuration) -----------
    store = platform.runtime.grain_storage
    writes_before = store.writes
    deactivated = await platform.runtime.shutdown_silo("silo-1")
    print(
        f"silo shutdown: {deactivated} activations persisted, "
        f"{store.writes - writes_before} storage writes"
    )


if __name__ == "__main__":
    scheduler = Scheduler()
    config = RuntimeConfig(default_method_cost=0.00005, activation_cost=0.0002)
    runtime = AodbRuntime(
        scheduler, config=config, network=Network(scheduler, lan=ConstantLatency(0.0005))
    )
    runtime.add_silo("silo-1", cores=4, instance_type="m5.xlarge")
    platform = ShmPlatform(AodbDatabase(runtime), window_capacity=1024)
    scheduler.run_until_complete(main(scheduler, platform))
    print(f"done (virtual time elapsed: {scheduler.now:.0f}s)")
