"""Heterogeneous ingestion and historical analytics.

Exercises the two outer tiers around the actor database:

1. three device dialects (JSON gateway, CSV logger, packed binary radio
   frame) flow through the ingestion gateway's bounded queue into the same
   sensor actors;
2. a burst above actor-tier throughput is absorbed by the queue
   (back-pressure, no drops);
3. windows evicted from actor memory land in the archive log, which the
   star-schema warehouse loads for historical group-by analytics — the
   third component of the paper's architecture.

Run: ``python examples/ingest_and_warehouse.py``
"""

from repro.aodb import AodbDatabase
from repro.ingest import BinaryFrameAdapter, IngestGateway, default_registry
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import AodbRuntime, RuntimeConfig
from repro.shm import ShmPlatform, channel_id_for, sensor_id_for
from repro.warehouse import StarSchema


async def main(scheduler, platform):
    report = await platform.provision(total_sensors=6)
    sensor_ids = report.sensor_ids
    all_channels = [
        channel_id_for(sensor_id, channel)
        for sensor_id in sensor_ids
        for channel in (0, 1)
    ]
    registry = default_registry(binary_channel_table=all_channels)
    gateway = IngestGateway(platform, registry, queue_capacity=256, dispatchers=4)
    gateway.start()

    # -- one upload per dialect ------------------------------------------------
    s0, s1, s2 = sensor_ids[0], sensor_ids[1], sensor_ids[2]
    gateway.submit(
        s0,
        "json",
        {
            "channels": {
                channel_id_for(s0, 0): [{"t": i * 0.1, "v": 20.0 + i} for i in range(10)],
                channel_id_for(s0, 1): [{"t": i * 0.1, "v": 30.0 + i} for i in range(10)],
            }
        },
    )
    gateway.submit(
        s1,
        "csv",
        "\n".join(f"{channel_id_for(s1, 0)},{i * 0.1},{40 + i}" for i in range(10)),
    )
    frame = BinaryFrameAdapter.encode(
        all_channels,
        {channel_id_for(s2, 0): [(i * 0.1, 50.0 + i) for i in range(10)]},
    )
    gateway.submit(s2, "binary", frame)
    await scheduler.sleep(1)
    print(f"three dialects ingested: {gateway.stats.formats_seen}, "
          f"dispatched={gateway.stats.dispatched}")

    # -- a burst absorbed by the queue ---------------------------------------------
    peak = 0
    for wave in range(50):
        # Waves arrive back-to-back; yielding lets dispatchers interleave,
        # exactly like a gateway thread accepting while workers drain.
        await scheduler.sleep(0.01)
        peak = max(peak, gateway.queue_depth)
        for sensor_id in sensor_ids:
            gateway.submit(
                sensor_id,
                "json",
                {
                    "channels": {
                        channel_id_for(sensor_id, c): [
                            {"t": 10.0 + wave + i * 0.1, "v": float(wave + i)}
                            for i in range(10)
                        ]
                        for c in (0, 1)
                    }
                },
            )
    peak = max(peak, gateway.queue_depth)
    await gateway.stop(drain=True)
    print(f"burst of 300 uploads: peak queue depth {peak}, "
          f"accepted={gateway.stats.accepted}, dropped={gateway.stats.dropped}")

    # -- warehouse export ---------------------------------------------------------
    # Force windows to storage boundaries by draining through small windows:
    # the platform's archive already holds whatever was evicted; export the
    # *live* windows too via silo shutdown, then load history.
    schema = StarSchema(time_grain_seconds=10.0)
    loaded = schema.load_archive(platform.archive)
    # Also load what is still in actor windows, through the raw query API.
    for channel_id in all_channels:
        for timestamp, value in await platform.raw_range(channel_id, 0.0, 1e9):
            schema.load_fact(channel_id, timestamp, value)
    print(f"warehouse loaded {schema.fact_count} facts "
          f"({loaded} from archive) across {schema.channel_count} channels")

    per_org = schema.aggregate(group_by=("org_id",))
    for row in per_org:
        print(f"  org {row.group[0]}: n={row.count} mean={row.mean:.1f} "
              f"min={row.minimum:.1f} max={row.maximum:.1f}")
    per_sensor = schema.aggregate(group_by=("sensor_id",))
    busiest = max(per_sensor, key=lambda row: row.count)
    print(f"busiest sensor: {busiest.group[0]} with {busiest.count} readings")
    series = schema.time_series(channel_id_for(s0, 0))
    print(f"10s-bucket series for {channel_id_for(s0, 0)}: "
          f"{[(bucket, round(mean, 1)) for bucket, mean in series[:5]]}")


if __name__ == "__main__":
    scheduler = Scheduler()
    config = RuntimeConfig(default_method_cost=0.0002, activation_cost=0.0002)
    runtime = AodbRuntime(
        scheduler, config=config, network=Network(scheduler, lan=ConstantLatency(0.0005))
    )
    runtime.add_silo("silo-1", cores=2, instance_type="m5.large")
    platform = ShmPlatform(AodbDatabase(runtime), window_capacity=200)
    scheduler.run_until_complete(main(scheduler, platform))
    print("ingest & warehouse example complete")
