"""Cluster operations: scale-out, placement, idle collection, elasticity.

A miniature of the paper's Figure 7 experiment plus the runtime mechanics
behind it:

1. build a 3-silo cluster and partition tenants across it;
2. offer one wave of sensor load and inspect per-silo utilization;
3. retire a silo gracefully (state persisted, actors re-place elsewhere);
4. show idle-activation collection reclaiming memory.

Run: ``python examples/scale_out_cluster.py``
"""

from repro.bench import LoadConfig, M5_XLARGE, build_deployment, provision, run_load


async def main(deployment):
    scheduler = deployment.scheduler
    runtime = deployment.runtime

    # -- partitioned provisioning (one org per 100 sensors, pinned) -----------
    report = await provision(deployment, total_sensors=300, sensors_per_org=100)
    print(f"provisioned {report.sensors} sensors / {report.organizations} orgs "
          f"/ {report.total_channels} channels over {len(runtime.silos())} silos")
    for silo in runtime.silos():
        print(f"  {silo.silo_id} ({silo.instance_type}): "
              f"{silo.activation_count} activations")

    # -- offer load and observe balanced utilization ---------------------------
    result = await run_load(deployment, LoadConfig(sensors=300, duration=5.0))
    insert = result.summary("insert")
    print(f"throughput {insert.throughput_mean:.0f} req/s, "
          f"p50 {insert.p50 * 1000:.1f} ms, p99 {insert.p99 * 1000:.1f} ms")
    for silo_id, utilization in sorted(result.utilization.items()):
        print(f"  {silo_id}: {utilization * 100:.1f}% busy")

    # -- graceful scale-in: retire one silo -------------------------------------
    moved = await runtime.shutdown_silo("silo-2")
    print(f"silo-2 retired; {moved} activations persisted and released")
    # The retired tenant's actors re-activate elsewhere on next use (their
    # pin is ignored for a dead silo; placement falls back).
    org2_live = await deployment.platform.live_data("org-2")
    print(f"org-2 live data still served ({len(org2_live)} channels) "
          f"after its silo retired")
    print("surviving silos:",
          {s.silo_id: s.activation_count for s in runtime.silos()})

    # -- idle collection ---------------------------------------------------------
    runtime.config.idle_timeout = 30.0
    runtime.config.collection_interval = 10.0
    runtime.start()
    before = runtime.total_activations()
    await scheduler.sleep(120.0)
    after = runtime.total_activations()
    print(f"idle collection: {before} -> {after} activations "
          f"({runtime.stats.activations_collected} collected)")


if __name__ == "__main__":
    deployment = build_deployment([M5_XLARGE] * 3, seed=7)
    deployment.scheduler.run_until_complete(main(deployment))
    print("cluster example complete")
