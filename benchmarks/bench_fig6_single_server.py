"""Figure 6: single-server ingestion throughput (one m5.large silo).

Paper: "roughly 1,800 requests per second can be processed by a m5.large
instance".  Shape asserted: throughput tracks offered load below
saturation, then plateaus near 1,800 req/s at full utilization.
"""

import pytest

from repro.bench import run_fig6

SENSOR_COUNTS = (600, 1200, 1800, 2400)


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(sensor_counts=SENSOR_COUNTS, duration=6.0)


def test_fig6_shape(fig6_result):
    points = {p.sensors: p for p in fig6_result.points}
    # Below saturation the platform keeps up with the offered load exactly.
    for sensors in (600, 1200):
        assert points[sensors].throughput == pytest.approx(sensors, rel=0.02)
    # At and beyond saturation, throughput plateaus near the paper's 1,800.
    assert points[1800].throughput == pytest.approx(1800, rel=0.05)
    assert points[2400].throughput == pytest.approx(1800, rel=0.10)
    # Utilization reaches (close to) 100% at the plateau.
    assert points[2400].utilization > 0.98
    assert points[600].utilization < 0.5


def test_fig6_benchmark(benchmark):
    # The shape is asserted above from a module-scoped run; the benchmark
    # measures the wall-clock cost of regenerating one saturation point.
    def regenerate():
        return run_fig6(sensor_counts=(1800,), duration=4.0)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.points[0].throughput == pytest.approx(1800, rel=0.05)
