"""Ablation (§5): grain-state durability policies vs. storage write load.

The paper: "if we wrote state to persistent storage after each request, we
would need 200 write requests every second to the cloud storage system" —
versus batching a window or writing only at silo shutdown (the benchmark
configuration).
"""

import pytest

from repro.bench import run_durability_ablation


@pytest.fixture(scope="module")
def durability_result():
    return run_durability_ablation(sensors=50, duration=6.0)


def test_write_through_storms_storage(durability_result):
    rows = {row["policy"]: row for row in durability_result.rows}
    # Write-through: one storage write per channel ingest = 2 per sensor
    # per second (the paper's "200 writes/s for 100 sensors" scaled to 50).
    assert rows["write_through"]["writes_per_second"] == pytest.approx(
        100, rel=0.25
    )
    # Deferred policies keep the steady-state write rate far lower.
    assert (
        rows["interval_5s"]["writes_per_second"]
        < rows["write_through"]["writes_per_second"] / 3
    )
    assert (
        rows["on_deactivate"]["writes_per_second"]
        < rows["write_through"]["writes_per_second"] / 3
    )


def test_on_deactivate_defers_to_shutdown(durability_result):
    rows = {row["policy"]: row for row in durability_result.rows}
    # The paper's benchmark config: state reaches storage when the silo
    # shuts down, covering every provisioned channel.
    assert rows["on_deactivate"]["writes_at_shutdown"] >= 100  # 2 per sensor


def test_write_through_costs_latency(durability_result):
    rows = {row["policy"]: row for row in durability_result.rows}
    assert rows["write_through"]["insert_p50"] > rows["on_deactivate"]["insert_p50"]


def test_durability_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_durability_ablation(sensors=20, duration=4.0),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 3
