"""Figure 7: scale-out over m5.xlarge silos (2,100 sensors per server).

Paper: "the throughput sustained by the data platform scales close to
linearly with the scale factor ... at a scale factor of five ... a
throughput above 10,000 requests per second".  The pytest suite sweeps
scale factors 1-3 (the full 1-8 sweep runs via
``python -m repro.bench fig7``; shape is identical).
"""

import pytest

from repro.bench import run_fig7
from repro.bench.experiments import FIG7_SENSORS_PER_SERVER

SCALE_FACTORS = (1, 2, 3)


@pytest.fixture(scope="module")
def fig7_result():
    return run_fig7(scale_factors=SCALE_FACTORS, duration=4.0)


def test_fig7_linear_scaling(fig7_result):
    points = {p.servers: p for p in fig7_result.points}
    base = points[1].throughput
    assert base == pytest.approx(FIG7_SENSORS_PER_SERVER, rel=0.02)
    for factor in SCALE_FACTORS[1:]:
        # Within a few percent of perfectly linear.
        assert points[factor].throughput == pytest.approx(base * factor, rel=0.05)


def test_fig7_leaves_query_headroom(fig7_result):
    # The paper targets ~80% utilization to leave room for online queries.
    for point in fig7_result.points:
        assert 0.70 <= point.utilization <= 0.88


def test_fig7_no_cross_server_bottleneck(fig7_result):
    # Per-silo utilization stays balanced: no silo saturates first.
    # (Asserted indirectly: aggregate utilization equals the single-server
    # figure at every scale factor.)
    utilizations = [p.utilization for p in fig7_result.points]
    assert max(utilizations) - min(utilizations) < 0.03


def test_fig7_benchmark(benchmark):
    def regenerate():
        return run_fig7(scale_factors=(2,), duration=3.0)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.points[0].throughput == pytest.approx(
        2 * FIG7_SENSORS_PER_SERVER, rel=0.05
    )
