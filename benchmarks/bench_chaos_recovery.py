"""Chaos recovery: ingestion goodput through a mid-run silo crash (§5).

The paper argues the AODB inherits Orleans' resilience: when a server
fails, virtual actors re-place on surviving silos and callers only see a
transient error.  This bench makes that claim measurable.  It drives the
Figure-7 wave workload over two silos, silently crashes one mid-run (plus
a window of network loss/duplication), and compares:

- **resilience on** — call deadlines + retries + failure detection.
  Expected: 100% availability (no unhandled SiloUnavailableError), goodput
  back above 90% of the pre-crash level within a few simulated seconds.
- **resilience off** (negative control) — raw errors reach the callers, so
  availability visibly drops during the outage window.

Run standalone: ``PYTHONPATH=src python benchmarks/bench_chaos_recovery.py
[--smoke]``.
"""

import argparse
import sys

import pytest

from repro.bench.chaos import ChaosConfig, format_chaos_report, run_chaos_recovery

FULL = dict(
    sensors=200,
    sensors_per_org=100,
    duration=20.0,
    crash_at=6.0,
    lease_seconds=2.0,
)
SMOKE = dict(
    sensors=100,
    sensors_per_org=50,
    duration=12.0,
    crash_at=4.0,
    lease_seconds=1.5,
    fault_window=4.0,
)
NET_CHAOS = dict(loss_rate=0.003, duplication_rate=0.003)
RECOVERY_BOUND_SECONDS = 5.0


@pytest.fixture(scope="module")
def chaos_pair():
    on = run_chaos_recovery(ChaosConfig(resilience=True, **FULL, **NET_CHAOS))
    off = run_chaos_recovery(ChaosConfig(resilience=False, **FULL))
    return on, off


def test_resilience_masks_the_crash(chaos_pair):
    on, _ = chaos_pair
    # Every insert eventually succeeded: retries absorbed the outage and
    # the packet loss; no SiloUnavailableError reached the workload.
    assert on.failed == 0
    assert on.availability == 1.0
    assert "SiloUnavailableError" not in on.errors_by_type
    assert on.calls_retried > 0


def test_goodput_recovers_within_bound(chaos_pair):
    on, _ = chaos_pair
    assert on.recovered
    assert on.recovery_seconds <= RECOVERY_BOUND_SECONDS
    assert on.steady_state_goodput >= 0.9 * on.pre_crash_throughput


def test_failure_detector_repairs_the_cluster(chaos_pair):
    on, _ = chaos_pair
    assert on.silos_evicted == 1
    assert on.activations_crashed > 0


def test_negative_control_shows_the_outage(chaos_pair):
    _, off = chaos_pair
    assert off.failed > 0
    assert off.errors_by_type.get("SiloUnavailableError", 0) > 0
    assert off.availability < 1.0
    assert off.calls_retried == 0 and off.silos_evicted == 0


def test_chaos_run_is_deterministic():
    first = run_chaos_recovery(ChaosConfig(resilience=True, **SMOKE, **NET_CHAOS))
    second = run_chaos_recovery(ChaosConfig(resilience=True, **SMOKE, **NET_CHAOS))
    assert first.goodput == second.goodput
    assert first.calls_retried == second.calls_retried
    assert first.deadlines_exceeded == second.deadlines_exceeded
    assert first.lost_messages == second.lost_messages


def test_chaos_benchmark(benchmark):
    def regenerate():
        return run_chaos_recovery(ChaosConfig(resilience=True, **SMOKE))

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.availability == 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast configuration (CI); asserts the acceptance criteria",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    on = run_chaos_recovery(ChaosConfig(resilience=True, **params, **NET_CHAOS))
    off = run_chaos_recovery(ChaosConfig(resilience=False, **params))
    print(format_chaos_report(on, off))
    ok = (
        on.failed == 0
        and on.recovered
        and on.recovery_seconds <= RECOVERY_BOUND_SECONDS
        and on.steady_state_goodput >= 0.9 * on.pre_crash_throughput
        and off.failed > 0
    )
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
