"""Ablation (§4.4): enforcing cross-actor constraints three ways.

The paper's principle: "Employ transactions to update data across actors
consistently; however, in the absence of transactions, keep data related to
a constraint in a single actor or design a multi-actor workflow for
updates."  We measure the cost and the consistency outcome of each option.
"""

import pytest

from repro.bench import run_constraints_ablation


@pytest.fixture(scope="module")
def constraints_result():
    return run_constraints_ablation(transfers=120, contention_farmers=4)


def test_transaction_and_workflow_preserve_invariant(constraints_result):
    rows = {row["flavour"]: row for row in constraints_result.rows}
    assert rows["transaction"]["invariant_holds"] is True
    assert rows["workflow"]["invariant_holds"] is True


def test_all_transactions_commit_without_contention_aborts(constraints_result):
    rows = {row["flavour"]: row for row in constraints_result.rows}
    assert rows["transaction"]["commits"] == 120
    assert rows["transaction"]["aborts"] == 0


def test_transactions_cost_more_than_workflows(constraints_result):
    rows = {row["flavour"]: row for row in constraints_result.rows}
    # Strict 2PL serializes transfers that share the seller actor, so the
    # per-transfer virtual time is much higher than the unserialized saga.
    assert (
        rows["transaction"]["per_transfer_ms"]
        > rows["workflow"]["per_transfer_ms"] * 3
    )


def test_transactions_send_more_messages(constraints_result):
    rows = {row["flavour"]: row for row in constraints_result.rows}
    # Snapshot/restore bookkeeping adds messages per participant.
    assert rows["transaction"]["messages"] > rows["workflow"]["messages"]


def test_constraints_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_constraints_ablation(transfers=40),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 3
