"""Observability overhead budget.

The tracing design claims two things (DESIGN.md §6):

1. **Disabled is free**: every producer site guards on ``tracer.enabled``
   (a plain attribute read), so a run with tracing off performs *zero*
   allocations in the tracing module — verified here with tracemalloc.
2. **Enabled is cheap**: full span production (one span per message, with
   queue/cpu/network/storage attribution) costs < 5% of the paper's
   calibrated insert workload.

The 5% budget is asserted as a ratio of two *individually stable*
measurements — the per-span lifecycle cost (begin with a parent and a
lazy name, four attribution adds, finish; min over tight reps) divided by
the per-message cost of the calibrated workload (CPU seconds of the load
phase over messages sent, min over runs) — rather than by differencing
two whole-workload timings.  On a shared machine, run-to-run CPU-time
jitter is the same order as the effect being measured, so an A/B
difference of macro runs flaps; each side of this ratio, however, is a
minimum over repetitions of the same code and converges.  Direct A/B
runs on a quiet machine agree with the ratio (2–4%, see EXPERIMENTS.md).

The budget is asserted against the representative workload, not the
zero-cost ping harness: a do-nothing round trip is ~25µs of pure harness
work, so *any* per-message instrumentation would dominate it, while a
calibrated message carries CPU, network, mailbox, and storage events.

Run with: ``python -m pytest benchmarks/bench_obs_overhead.py -q``
"""

import time
import tracemalloc

from repro.bench.instances import M5_LARGE
from repro.bench.workload import LoadConfig, build_deployment, execute, provision
from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.obs.health import HealthMonitor, default_slo_rules
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import Tracer
from repro.runtime import Actor, AodbRuntime, RuntimeConfig
from repro.runtime.key import ActorKey

SENSORS = 40
DURATION = 2.0


def run_workload(tracing: bool = False, profiling: bool = False):
    """One calibrated insert run.

    Returns (load-phase CPU seconds, messages sent during the load phase,
    runtime).  Provisioning runs before the clock starts.
    """
    deployment = build_deployment(
        [M5_LARGE], seed=7, tracing=tracing, profiling=profiling
    )
    deployment.scheduler.run_until_complete(provision(deployment, SENSORS))
    stats = deployment.runtime.stats
    before = stats.asks + stats.tells
    started = time.process_time()
    execute(deployment, LoadConfig(sensors=SENSORS, duration=DURATION))
    elapsed = time.process_time() - started
    return elapsed, stats.asks + stats.tells - before, deployment.runtime


class _Key:
    """Stands in for an ActorKey: spans format names lazily via qualified()."""

    def qualified(self):
        return "Sensor/s-1"


def span_lifecycle_cost(iterations: int = 20_000, reps: int = 7) -> float:
    """Best-case CPU seconds for one full span, attribution included."""
    tracer = Tracer(enabled=True, max_spans=iterations + 10)
    key = _Key()
    best = float("inf")
    for _ in range(reps):
        tracer.clear()
        root = tracer.begin("root", "client", "client", 0.0)
        started = time.process_time()
        for _ in range(iterations):
            span = tracer.begin(
                key, "ask", "silo-0", 0.0, parent=root, method="ingest"
            )
            span.queue += 0.001
            span.cpu += 0.002
            span.network += 0.0005
            span.storage += 0.0001
            tracer.finish(span, 0.01)
        elapsed = time.process_time() - started
        best = min(best, elapsed / iterations)
    return best


def per_message_cost(runs: int = 3) -> float:
    """Best-case CPU seconds per message of the calibrated workload."""
    run_workload(tracing=False)  # warm allocator, code objects, caches
    best = float("inf")
    for _ in range(runs):
        elapsed, messages, _runtime = run_workload(tracing=False)
        assert messages > 0
        best = min(best, elapsed / messages)
    return best


def test_enabled_tracing_overhead_under_five_percent():
    """Span production costs < 5% of a calibrated message's CPU time."""
    span_cost = span_lifecycle_cost()
    message_cost = per_message_cost()
    overhead = span_cost / message_cost
    assert overhead < 0.05, (
        f"tracing overhead {overhead * 100:.2f}% "
        f"(span {span_cost * 1e6:.2f}µs, message {message_cost * 1e6:.2f}µs)"
    )


def test_enabled_tracing_actually_records():
    """The cost being budgeted is real work: spans were produced."""
    _elapsed, messages, runtime = run_workload(tracing=True)
    assert len(runtime.tracer) >= messages  # one span per message, plus timers
    assert runtime.tracer.dropped == 0


# -- profiler + health overhead budget ----------------------------------------


def profiler_turn_cost(iterations: int = 20_000, reps: int = 7) -> float:
    """Best-case CPU seconds for one profiled turn.

    Reproduces exactly what the activation pump adds per turn when the
    profiler is on: two record fetches, call/queue accumulation, and the
    kernel's service/wait attribution loop.
    """
    profiler = Profiler(enabled=True)
    key = ActorKey("Sensor", "org-0/s-1")
    best = float("inf")
    for _ in range(reps):
        profiler.clear()
        started = time.process_time()
        for _ in range(iterations):
            profiler.turns += 1
            mprof = profiler.method_record("Sensor", "ingest")
            aprof = profiler.activation_record(key)
            mprof.calls += 1
            aprof.calls += 1
            mprof.queue_wait += 0.001
            aprof.queue_wait += 0.001
            for record in (mprof, aprof):  # the CpuResource.consume hook
                record.cpu_service += 0.002
                record.cpu_wait += 0.0001
        elapsed = time.process_time() - started
        best = min(best, elapsed / iterations)
    return best


def health_eval_cost(reps: int = 200) -> float:
    """Best-case CPU seconds for one health evaluation pass.

    The registry is populated to a representative cluster size (a few
    hundred instruments) so the snapshot the monitor takes is honest.
    """
    registry = MetricsRegistry()
    for silo in range(8):
        for name in ("runtime.asks", "ingest.accepted", "runtime.errors"):
            registry.counter(name, silo=f"silo-{silo}").inc(100.0)
        registry.register_probe(
            "silo.mailbox_depth", lambda: 3.0, silo=f"silo-{silo}"
        )
    registry.histogram("runtime.ask_latency_seconds").observe(0.01)
    monitor = HealthMonitor(registry, default_slo_rules())
    monitor.evaluate(0.0)  # warm caches / first rate sample
    best = float("inf")
    for index in range(reps):
        started = time.process_time()
        monitor.evaluate(float(index + 1))
        elapsed = time.process_time() - started
        best = min(best, elapsed)
    return best


def test_enabled_profiling_and_health_overhead_under_five_percent():
    """Profiler turns + amortized health evaluation cost < 5% per message.

    Same stable-ratio methodology as the tracing budget: per-turn profiler
    cost plus the per-message share of one health evaluation (the monitor
    fires once per virtual second, amortized over that second's messages),
    divided by the calibrated per-message workload cost.
    """
    turn_cost = profiler_turn_cost()
    message_cost = per_message_cost()
    _elapsed, messages, _runtime = run_workload()
    messages_per_virtual_second = messages / DURATION
    health_per_message = health_eval_cost() / messages_per_virtual_second
    overhead = (turn_cost + health_per_message) / message_cost
    assert overhead < 0.05, (
        f"profiling+health overhead {overhead * 100:.2f}% "
        f"(turn {turn_cost * 1e6:.2f}µs, health/msg "
        f"{health_per_message * 1e6:.2f}µs, message {message_cost * 1e6:.2f}µs)"
    )


def test_enabled_profiling_actually_attributes():
    """The cost being budgeted is real work: attribution covers the ledger."""
    _elapsed, _messages, runtime = run_workload(profiling=True)
    profiler = runtime.profiler
    total = sum(silo.cpu.busy_seconds for silo in runtime.silos())
    assert profiler.turns > 0
    assert total > 0
    coverage = profiler.coverage(total)
    assert 0.95 <= coverage <= 1.0 + 1e-6, f"coverage {coverage:.4f}"


# -- flight-recorder overhead budget -------------------------------------------


def recorder_trace_cost(iterations: int = 20_000, reps: int = 7) -> float:
    """Best-case CPU seconds for one recorded root trace, end to end.

    Covers everything tail-based retention adds on top of plain span
    production: the ``on_begin`` buffering, the completion-time scoring
    against every predicate, the reservoir feed, and the downsample
    counter.  Healthy traces (the steady state) are measured — anomalies
    are rare by definition and their retention cost amortizes to nothing.
    """
    scheduler = Scheduler()
    recorder = FlightRecorder(scheduler)
    tracer = Tracer(enabled=True)
    tracer.recorder = recorder
    best = float("inf")
    for _ in range(reps):
        recorder.clear()
        started = time.process_time()
        for _ in range(iterations):
            root = tracer.begin("root", "ask", "client", 0.0)
            tracer.finish(root, 0.001)
        elapsed = time.process_time() - started
        best = min(best, elapsed / iterations)
    assert recorder.downsampled_traces == iterations
    return best


def ring_record_cost(iterations: int = 50_000, reps: int = 7) -> float:
    """Best-case CPU seconds for one ring-journal record."""
    recorder = FlightRecorder(Scheduler())
    ring = recorder.journal("kernel")
    best = float("inf")
    for _ in range(reps):
        started = time.process_time()
        for _ in range(iterations):
            ring.record("timer-fire", 7, 0.5)
        elapsed = time.process_time() - started
        best = min(best, elapsed / iterations)
    return best


def test_recorder_overhead_under_five_percent():
    """Retention scoring + one ring record cost < 5% of a message.

    Same stable-ratio methodology as the tracing budget.  The numerator is
    deliberately conservative: it charges every message a *whole* recorded
    root trace (real traces span several messages) plus a journal record
    (most messages touch no hook site).
    """
    trace_cost = recorder_trace_cost()
    record_cost = ring_record_cost()
    message_cost = per_message_cost()
    overhead = (trace_cost + record_cost) / message_cost
    assert overhead < 0.05, (
        f"recorder overhead {overhead * 100:.2f}% "
        f"(trace {trace_cost * 1e6:.2f}µs, record {record_cost * 1e6:.2f}µs, "
        f"message {message_cost * 1e6:.2f}µs)"
    )


# -- disabled-path allocation check (tight harness on purpose) ----------------


class PingActor(Actor):
    async def ping(self):
        return 1


def build_ping_runtime():
    sched = Scheduler()
    config = RuntimeConfig(
        default_method_cost=0.0, activation_cost=0.0, copy_messages=False
    )
    runtime = AodbRuntime(
        sched,
        config=config,
        network=Network(sched, lan=ConstantLatency(0.0)),
        tracer=Tracer(enabled=False),
    )
    runtime.add_silo("s1", cores=4)
    runtime.register_actor(PingActor)
    return sched, runtime


def drive_pings(sched, runtime, count: int = 2000):
    async def main():
        ref = runtime.ref("PingActor", "a")
        for _ in range(count):
            await ref.ping()

    sched.run_until_complete(main())


def run_ping_round_trips(count: int = 2000):
    sched, runtime = build_ping_runtime()
    drive_pings(sched, runtime, count)
    return runtime


def test_disabled_tracing_allocates_nothing():
    """With tracing off, the tracing module performs zero allocations."""
    run_ping_round_trips()  # warm imports and code objects
    tracemalloc.start()
    try:
        runtime = run_ping_round_trips()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    trace_allocs = snapshot.filter_traces(
        [tracemalloc.Filter(True, "*/obs/trace.py")]
    )
    assert sum(stat.count for stat in trace_allocs.statistics("filename")) == 0
    assert len(runtime.tracer) == 0
    assert runtime.tracer.dropped == 0


def test_disabled_profiling_allocates_nothing():
    """With the profiler off, the message loop allocates nothing in
    obs/profile.py or obs/health.py.

    The runtime is built *outside* the traced region (constructing it
    legitimately allocates the disabled Profiler once); only steady-state
    message traffic is measured.
    """
    sched, runtime = build_ping_runtime()
    drive_pings(sched, runtime)  # warm allocator, code objects, activation
    tracemalloc.start()
    try:
        drive_pings(sched, runtime)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    allocs = snapshot.filter_traces(
        [
            tracemalloc.Filter(True, "*/obs/profile.py"),
            tracemalloc.Filter(True, "*/obs/health.py"),
        ]
    )
    assert sum(stat.count for stat in allocs.statistics("filename")) == 0
    assert runtime.profiler.turns == 0
    assert runtime.profiler.attributed_cpu() == 0.0


def test_recorder_not_sampled_path_allocates_nothing():
    """With tracing off, an *attached* recorder allocates nothing.

    This is the strong form of the always-on claim: the rings stay
    enabled and genuinely record (every timer fire lands in the kernel
    ring), yet steady-state message traffic performs zero allocations in
    obs/recorder.py — record() is four stores into preallocated slots and
    a small-int cursor bump.
    """
    sched, runtime = build_ping_runtime()
    recorder = FlightRecorder(sched).attach(runtime)
    ring = recorder.journal("kernel")
    # Warm until the ring has wrapped so no code path is first-run.
    drive_pings(sched, runtime)
    for _ in range(600):
        ring.record("warm", 1, 2.0)
    tracemalloc.start()
    try:
        drive_pings(sched, runtime)
        for _ in range(5000):
            ring.record("timer-fire", 7, 0.5)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    allocs = snapshot.filter_traces(
        [tracemalloc.Filter(True, "*/obs/recorder.py")]
    )
    assert sum(stat.count for stat in allocs.statistics("filename")) == 0
    assert recorder.completed_traces == 0  # tracer off: nothing sampled
    assert len(ring) == ring._capacity  # the ring really was recording


# -- kernel allocation budget -------------------------------------------------


def test_allocations_per_event_within_budget():
    """Steady-state kernel allocations stay bounded per processed event.

    Measured exactly like ``repro.bench speed``: tracemalloc's peak traced
    size over a deadline-wrapped ask workload, divided by the events the
    scheduler processed.  The pooled/fused kernel sits around 4-8 bytes per
    event; the budget leaves allocator-jitter headroom while still failing
    loudly if a per-event allocation (a leaked deadline timer, an unpooled
    invocation envelope, a per-message closure) sneaks back in.
    """
    from repro.bench.speed import _run_ask_workload

    _run_ask_workload(10, 30, None)  # warm code objects and caches
    tracemalloc.start()
    tracemalloc.clear_traces()
    try:
        sched = _run_ask_workload(40, 150, None)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    per_event = peak / sched.events_processed
    assert per_event < 64.0, f"{per_event:.1f} peak bytes/event over budget"
