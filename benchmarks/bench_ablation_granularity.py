"""Ablation (§4.3): meat cuts as actors (A) vs. versioned objects (B).

The paper: "Since each actor keeps a separate object version of the meat
cut throughout the supply chain, communication to obtain meat cut
information is obviated.  For frequently accessed entities, this reduction
in communication may pay off with respect to the overhead of copying
non-actor objects."
"""

import pytest

from repro.bench import run_granularity_ablation


@pytest.fixture(scope="module")
def granularity_result():
    return run_granularity_ablation(cows=60, cuts_per_cow=4, info_requests_per_cut=5)


def test_model_b_obviates_communication(granularity_result):
    rows = {row["model"]: row for row in granularity_result.rows}
    # Model B answers info requests from local state: far fewer messages.
    assert rows["model_b_objects"]["messages"] < rows["model_a_actors"]["messages"] * 0.75


def test_model_b_creates_far_fewer_activations(granularity_result):
    rows = {row["model"]: row for row in granularity_result.rows}
    # Model A activates one actor per cut (+ products); model B holds
    # object versions inside a handful of stage actors.
    assert rows["model_b_objects"]["activations"] < rows["model_a_actors"]["activations"] / 3


def test_model_b_is_faster_for_read_heavy_chains(granularity_result):
    rows = {row["model"]: row for row in granularity_result.rows}
    assert (
        rows["model_b_objects"]["virtual_seconds"]
        < rows["model_a_actors"]["virtual_seconds"]
    )


def test_granularity_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_granularity_ablation(cows=20),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 2
