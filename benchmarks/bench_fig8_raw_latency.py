"""Figure 8: latency percentiles for raw sensor-channel time-range requests.

Paper: "for 500 simulated sensors, 99.9th percentile latency is minimal for
raw data requests", and "the latency of raw data requests is often
substantially below 0.5 sec" at 2,000 sensors.
"""

import pytest

from repro.bench import run_fig8

SENSOR_COUNTS = (500, 1000, 2000)


@pytest.fixture(scope="module")
def fig8_result():
    return run_fig8(sensor_counts=SENSOR_COUNTS, duration=8.0)


def test_fig8_percentiles_ordered(fig8_result):
    for point in fig8_result.points:
        raw = point.raw
        assert raw is not None and raw.requests > 0
        assert raw.p50 <= raw.p90 <= raw.p99 <= raw.p999


def test_fig8_latency_grows_with_load(fig8_result):
    by_sensors = {p.sensors: p.raw for p in fig8_result.points}
    assert by_sensors[500].p99 < by_sensors[2000].p99
    assert by_sensors[500].p999 < by_sensors[2000].p999


def test_fig8_paper_operating_points(fig8_result):
    by_sensors = {p.sensors: p.raw for p in fig8_result.points}
    # 99.9p minimal at 500 sensors (well under the interactive budget).
    assert by_sensors[500].p999 < 0.2
    # Raw requests "often substantially below 0.5 sec" at 2,000 sensors:
    # the median is far below it and even p90 nearly meets it.
    assert by_sensors[2000].p50 < 0.35
    assert by_sensors[2000].p90 < 0.6
    # Interactive requirement: a few seconds at most, comfortably met.
    assert by_sensors[2000].p999 < 2.0


def test_fig8_benchmark(benchmark):
    def regenerate():
        return run_fig8(sensor_counts=(2000,), duration=5.0)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.points[0].raw.requests > 0
