"""Ablation (§5): random vs. prefer-local placement of channel actors.

The paper: "we have had to change the activation placement strategy away
from random placement for our sensor channels and aggregators.  The
prefer-local placement ... minimizes the need to perform remote procedure
calls."
"""

import pytest

from repro.bench import run_placement_ablation


@pytest.fixture(scope="module")
def placement_result():
    return run_placement_ablation(sensors=800, servers=4, duration=5.0)


def test_prefer_local_minimizes_remote_messages(placement_result):
    rows = {row["strategy"]: row for row in placement_result.rows}
    assert rows["prefer_local"]["remote_fraction"] < 0.5
    assert rows["random"]["remote_fraction"] > 0.7
    assert (
        rows["prefer_local"]["remote_fraction"]
        < rows["random"]["remote_fraction"] / 2
    )


def test_prefer_local_does_not_hurt_latency(placement_result):
    rows = {row["strategy"]: row for row in placement_result.rows}
    assert rows["prefer_local"]["insert_p50"] <= rows["random"]["insert_p50"] * 1.1


def test_both_strategies_sustain_offered_load(placement_result):
    for row in placement_result.rows:
        assert row["throughput"] == pytest.approx(800, rel=0.05)


def test_placement_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_placement_ablation(sensors=400, servers=4, duration=3.0),
        rounds=1,
        iterations=1,
    )
    assert len(result.rows) == 2
