"""Figure 9: latency percentiles for organization live-data requests.

Paper: live-data requests (a fan-out over all ~210 channels of a tenant)
are slower than raw requests but stay "under 1 sec" at 500 sensors even at
the 99.9th percentile, and "often below 1 sec at 2,000 simulated sensors".
"""

import pytest

from repro.bench import run_fig9

SENSOR_COUNTS = (500, 1000, 2000)


@pytest.fixture(scope="module")
def fig9_result():
    return run_fig9(sensor_counts=SENSOR_COUNTS, duration=8.0)


def test_fig9_percentiles_ordered(fig9_result):
    for point in fig9_result.points:
        live = point.live
        assert live is not None and live.requests > 0
        assert live.p50 <= live.p90 <= live.p99 <= live.p999


def test_fig9_latency_grows_with_load(fig9_result):
    by_sensors = {p.sensors: p.live for p in fig9_result.points}
    assert by_sensors[500].p99 < by_sensors[2000].p99


def test_fig9_paper_operating_points(fig9_result):
    by_sensors = {p.sensors: p.live for p in fig9_result.points}
    # Under 1 s at 500 sensors even at extreme percentiles.
    assert by_sensors[500].p999 < 1.0
    # Often below 1 s at 2,000 sensors (median and p90).
    assert by_sensors[2000].p50 < 1.0
    assert by_sensors[2000].p90 < 1.0


def test_fig9_live_slower_than_raw_at_high_percentiles(fig9_result):
    # The fan-out pays more queueing than a single-actor read.
    for point in fig9_result.points:
        if point.sensors >= 1000:
            assert point.live.p90 >= point.raw.p90 * 0.95


def test_fig9_benchmark(benchmark):
    def regenerate():
        return run_fig9(sensor_counts=(2000,), duration=5.0)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert result.points[0].live.requests > 0
