"""Micro-benchmarks of the simulation harness itself (wall-clock).

These measure the *harness*, not the simulated platform: how many simulated
actor messages per wall-clock second the kernel sustains.  Useful for
keeping the figure regenerations tractable as the library evolves.
"""

import pytest

from repro.kernel import Scheduler
from repro.net import ConstantLatency, Network
from repro.runtime import Actor, AodbRuntime, RuntimeConfig


class PingActor(Actor):
    async def ping(self):
        return 1


def build_runtime():
    sched = Scheduler()
    config = RuntimeConfig(
        default_method_cost=0.0, activation_cost=0.0, copy_messages=False
    )
    runtime = AodbRuntime(
        sched, config=config, network=Network(sched, lan=ConstantLatency(0.0))
    )
    runtime.add_silo("s1", cores=4)
    runtime.register_actor(PingActor)
    return sched, runtime


def test_bench_message_round_trips(benchmark):
    """Ask-reply round trips through one activation."""

    def run_messages():
        sched, runtime = build_runtime()

        async def main():
            ref = runtime.ref("PingActor", "a")
            for _ in range(2000):
                await ref.ping()

        sched.run_until_complete(main())
        return runtime.stats.replies

    replies = benchmark(run_messages)
    assert replies == 2000


def test_bench_concurrent_fanout(benchmark):
    """A 1000-actor fan-out gathered in one wave."""

    def run_fanout():
        sched, runtime = build_runtime()

        async def main():
            futures = [
                runtime.ref("PingActor", f"a{i}").ask("ping") for i in range(1000)
            ]
            return await sched.gather(futures)

        return len(sched.run_until_complete(main()))

    count = benchmark(run_fanout)
    assert count == 1000


def test_bench_scheduler_events(benchmark):
    """Raw kernel event throughput (sleep chains)."""

    def run_events():
        sched = Scheduler()

        async def sleeper():
            for _ in range(1000):
                await sched.sleep(0.001)

        tasks = [sched.spawn(sleeper()) for _ in range(10)]

        async def main():
            await sched.gather(tasks)

        sched.run_until_complete(main())
        return sched.events_processed

    events = benchmark(run_events)
    assert events >= 10_000
