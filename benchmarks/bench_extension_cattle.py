"""Extension bench: collar-ingestion scaling for the cattle platform.

The paper benchmarks only the SHM case study; this extension applies the
same methodology (synchronized one-reading-per-cow-per-second waves, one
m5.large-class silo) to case study 2 and asserts the same
linear-then-saturate shape.
"""

import pytest

from repro.bench import run_cattle_scaling


@pytest.fixture(scope="module")
def cattle_result():
    return run_cattle_scaling(cow_counts=(1000, 2500, 5000, 6000), duration=5.0)


def test_cattle_linear_below_saturation(cattle_result):
    rows = {row["cows"]: row for row in cattle_result.rows}
    assert rows[1000]["throughput"] == pytest.approx(1000, rel=0.02)
    assert rows[2500]["throughput"] == pytest.approx(2500, rel=0.02)


def test_cattle_saturates_at_predicted_point(cattle_result):
    predicted = cattle_result.notes["predicted_saturation_cows"]
    rows = {row["cows"]: row for row in cattle_result.rows}
    # At the predicted saturation the silo is fully busy...
    assert rows[5000]["utilization"] > 0.97
    # ...and beyond it throughput plateaus instead of tracking offered load.
    assert rows[6000]["throughput"] == pytest.approx(predicted, rel=0.10)
    assert rows[6000]["throughput"] < 6000 * 0.95


def test_cattle_latency_grows_with_load(cattle_result):
    rows = {row["cows"]: row for row in cattle_result.rows}
    assert rows[1000]["p99_ms"] < rows[5000]["p99_ms"]


def test_cattle_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run_cattle_scaling(cow_counts=(2000,), duration=3.0),
        rounds=1,
        iterations=1,
    )
    assert result.rows[0]["throughput"] == pytest.approx(2000, rel=0.05)
